package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"hippo/internal/constraint"
	"hippo/internal/engine"
)

// Differential property: the streaming certification pipeline (cost-based
// planner + overlapped prover pool) and the materialized pre-planner
// baseline must produce identical consistent answers — and both must
// match the repair-enumeration oracle — on randomized instances, with and
// without interleaved updates flowing through the verdict-cache path.

// streamingQueries is the SJUD battery used by every differential test
// below; join shapes exercise the planner's Product→Join rewrite.
var streamingQueries = []string{
	"SELECT * FROM r",
	"SELECT * FROM r WHERE b = 1",
	"SELECT * FROM r WHERE a = 1 AND c <> 0",
	"SELECT * FROM r EXCEPT SELECT * FROM r WHERE c = 2",
	"SELECT * FROM r WHERE b = 0 UNION SELECT * FROM r WHERE b <> 0",
	"SELECT c, a, b FROM r",
	"SELECT * FROM r WHERE a < 2 INTERSECT SELECT * FROM r WHERE c < 2",
	"SELECT r.a, r.b, r.c, s.a, s.d FROM r, s WHERE r.a = s.a",
	"SELECT r.a, r.b, r.c, s.a, s.d FROM r, s WHERE r.a = s.a AND s.d > 0",
}

// randomJoinSystem builds r(a,b,c) with FD a→b (small domains force
// conflicts) plus a clean keyed dimension s(a,d) for the join queries.
func randomJoinSystem(rng *rand.Rand, n int) *System {
	db := engine.New()
	mustExec(db, "CREATE TABLE r (a INT, b INT, c INT)")
	mustExec(db, "CREATE TABLE s (a INT, d INT)")
	seen := map[string]bool{}
	for inserted := 0; inserted < n; {
		a, b, c := rng.Intn(4), rng.Intn(3), rng.Intn(3)
		key := fmt.Sprintf("%d|%d|%d", a, b, c)
		if seen[key] {
			continue
		}
		seen[key] = true
		mustExec(db, fmt.Sprintf("INSERT INTO r VALUES (%d, %d, %d)", a, b, c))
		inserted++
	}
	for a := 0; a < 4; a++ {
		mustExec(db, fmt.Sprintf("INSERT INTO s VALUES (%d, %d)", a, rng.Intn(3)))
	}
	fd := constraint.FD{Rel: "r", LHS: []string{"a"}, RHS: []string{"b"}}
	return NewSystem(db, []constraint.Constraint{fd})
}

// assertStreamedMatches runs q in both modes on s and compares the answer
// sets (and, when oracle is true, the repair-enumeration ground truth).
func assertStreamedMatches(t *testing.T, s *System, q, label string, oracle bool, opts Options) {
	t.Helper()
	optsStreamed := opts
	optsStreamed.Materialized = false
	optsMat := opts
	optsMat.Materialized = true

	streamed, stStreamed, err := s.ConsistentQuery(q, optsStreamed)
	if err != nil {
		t.Fatalf("%s %q streamed: %v", label, q, err)
	}
	materialized, stMat, err := s.ConsistentQuery(q, optsMat)
	if err != nil {
		t.Fatalf("%s %q materialized: %v", label, q, err)
	}
	if !stStreamed.Streamed {
		t.Fatalf("%s %q: streamed run did not report Streamed", label, q)
	}
	if stMat.Streamed {
		t.Fatalf("%s %q: materialized run reported Streamed", label, q)
	}
	g, m := rowStrings(streamed.Rows), rowStrings(materialized.Rows)
	if strings.Join(g, "|") != strings.Join(m, "|") {
		t.Fatalf("%s %q:\n streamed     %v\n materialized %v", label, q, g, m)
	}
	if !oracle {
		return
	}
	en, err := s.RepairEnumerator()
	if err != nil {
		t.Fatal(err)
	}
	want, err := en.ConsistentAnswers(q)
	if err != nil {
		t.Fatalf("%s %q oracle: %v", label, q, err)
	}
	if w := rowStrings(want); strings.Join(g, "|") != strings.Join(w, "|") {
		t.Fatalf("%s %q:\n streamed %v\n oracle   %v", label, q, g, w)
	}
}

// TestStreamingMatchesMaterializedRandomized: static instances, all
// query shapes, both modes, against the oracle.
func TestStreamingMatchesMaterializedRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 15; trial++ {
		s := randomJoinSystem(rng, 6+rng.Intn(6))
		for _, q := range streamingQueries {
			assertStreamedMatches(t, s, q, fmt.Sprintf("trial %d", trial), true, Options{})
		}
		s.Close()
	}
}

// TestStreamingMatchesMaterializedNoCache repeats the property with the
// verdict cache disabled, so every certification hits the prover.
func TestStreamingMatchesMaterializedNoCache(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 5; trial++ {
		s := randomJoinSystem(rng, 8)
		for _, q := range streamingQueries {
			assertStreamedMatches(t, s, q, fmt.Sprintf("trial %d", trial), true,
				Options{DisableVerdictCache: true})
		}
		s.Close()
	}
}

// TestStreamingUnderInterleavedUpdates: both modes stay equal (and
// oracle-correct) while inserts and deletes flow through incremental
// maintenance and the verdict-cache invalidation path between queries.
func TestStreamingUnderInterleavedUpdates(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	// Start r empty: every live row then arrives through the update path,
	// letting the test track the live set exactly.
	s := randomJoinSystem(rng, 0)
	defer s.Close()
	if _, err := s.Analyze(); err != nil {
		t.Fatal(err)
	}
	// Track live rows so inserts never duplicate an existing tuple: the
	// engine has bag semantics but the repair oracle answers with sets, so
	// duplicates would diverge for reasons unrelated to streaming.
	live := map[string]bool{}
	const steps, checkEvery = 120, 10
	for step := 1; step <= steps; step++ {
		switch rng.Intn(3) {
		case 0, 1:
			a, b, c := rng.Intn(4), rng.Intn(3), rng.Intn(3)
			key := fmt.Sprintf("%d|%d|%d", a, b, c)
			if live[key] {
				continue
			}
			live[key] = true
			mustExec(s.DB(), fmt.Sprintf("INSERT INTO r VALUES (%d, %d, %d)", a, b, c))
		default:
			a, b := rng.Intn(4), rng.Intn(3)
			for c := 0; c < 3; c++ {
				delete(live, fmt.Sprintf("%d|%d|%d", a, b, c))
			}
			mustExec(s.DB(), fmt.Sprintf("DELETE FROM r WHERE a = %d AND b = %d", a, b))
		}
		if step%checkEvery != 0 {
			continue
		}
		// Default Options: verdict cache on, so repeated checkpoints walk
		// the store/invalidate path in both modes.
		for _, q := range streamingQueries {
			assertStreamedMatches(t, s, q, fmt.Sprintf("step %d", step), true, Options{})
		}
	}
	if c := s.CacheStats(); c.Stores == 0 {
		t.Error("workload never exercised the verdict cache store path")
	}
}
