package core

import (
	"context"
	"errors"
	"time"

	"hippo/internal/cqaplan"
	"hippo/internal/engine"
	"hippo/internal/ra"
	"hippo/internal/rewrite"
)

// TierSelect constrains the tiered answering planner's choice for one
// consistent-query run.
type TierSelect int

const (
	// TierAuto lets the classifier pick the fastest sound tier (default).
	TierAuto TierSelect = iota
	// TierForceProver routes the query through the prover tier
	// unconditionally — the differential-testing and benchmark baseline.
	TierForceProver
	// TierRequireRewrite fails the query with ErrRewriteIneligible unless
	// the classifier picks the rewrite tier, instead of silently falling
	// back; tests and benchmarks use it to assert the fast path fires.
	TierRequireRewrite
)

// ErrRewriteIneligible reports a TierRequireRewrite run whose query the
// classifier routed away from the rewrite tier.
var ErrRewriteIneligible = errors.New("core: query is not eligible for the rewrite tier")

// TierCounters are lifetime counts of consistent-query runs by the tier
// that produced their answers, plus fast-tier executions that failed
// mid-run and were silently re-served by the prover.
type TierCounters struct {
	Rewrite   int64
	Hybrid    int64
	Prover    int64
	Fallbacks int64
}

// TierCounts reports the system's lifetime per-tier counters.
func (s *System) TierCounts() TierCounters {
	return TierCounters{
		Rewrite:   s.tierRewrite.Load(),
		Hybrid:    s.tierHybrid.Load(),
		Prover:    s.tierProver.Load(),
		Fallbacks: s.tierFallback.Load(),
	}
}

// ConstraintEpoch returns the constraint-change counter: it advances on
// every AddConstraint and DDL statement, and keys both the prepared
// rewriter and the compiled tier-plan cache.
func (s *System) ConstraintEpoch() uint64 { return s.cepoch.Load() }

// certTuningSet reports whether any certification-plane tuning option is
// active. Such runs are experiment baselines measuring the prover plane
// (naive membership, pruning/cache/component ablations, serialized or
// materialized pipelines), so the planner must not route them away from
// it.
func certTuningSet(opts Options) bool {
	return opts.Mode != ProverIndexed || opts.DisablePruning || opts.Serialized ||
		opts.DisableVerdictCache || opts.GlobalCertification || opts.Materialized
}

// preparedRewriter returns the rewriter prepared for the current
// constraint set, rebuilding it only when the constraint epoch moved.
// This replaces the old behavior of constructing a fresh rewrite.Rewriter
// on every Rewriter/Support call.
func (s *System) preparedRewriter(epoch uint64) *rewrite.Rewriter {
	s.rwmu.Lock()
	defer s.rwmu.Unlock()
	if s.rwprep == nil || s.rwepoch != epoch {
		s.rwprep = rewrite.Prepare(s.db, s.Constraints())
		s.rwepoch = epoch
	}
	return s.rwprep
}

// tierDecision classifies the plan for this run, memoized per (plan
// signature, constraint epoch). It never fails: classification or
// compilation trouble yields a prover-tier decision with reasons.
func (s *System) tierDecision(plan ra.Node, sig string, opts Options) *cqaplan.Decision {
	if opts.Tier == TierForceProver || certTuningSet(opts) {
		return &cqaplan.Decision{Tier: cqaplan.TierProver, Reasons: []cqaplan.Reason{
			{Code: cqaplan.ReasonForced, Detail: "prover tier forced by options"}}}
	}
	epoch := s.cepoch.Load()
	if d, ok := s.tiers.Lookup(sig, epoch); ok {
		return d
	}
	rw := s.preparedRewriter(epoch)
	d := cqaplan.Classify(rw, s.Constraints(), plan)
	if d.Plan != nil {
		// Cache the compiled plan bound to the live tables, not to this
		// run's snapshot, so a cached decision never pins snapshot slabs;
		// each run rebinds it to its own view.
		if live, err := engine.Rebind(d.Plan, s.db); err == nil {
			d.Plan = live
		} else {
			d = &cqaplan.Decision{Tier: cqaplan.TierProver, Reasons: []cqaplan.Reason{
				{Code: cqaplan.ReasonCompileFailed, Detail: err.Error()}}}
		}
	}
	s.tiers.Store(sig, epoch, d)
	return d
}

// testTierExecHook, when set (tests only), runs at the top of every
// rewrite-tier execution; an error simulates a compiled plan failing at
// run time so the silent prover fallback can be exercised.
var testTierExecHook func() error

// answerRewrite serves a rewrite-tier decision: the compiled plan is
// rebound to the view's snapshot and evaluated through the cost-based
// planner's streaming iterators. No envelope is built and no candidate is
// certified — the plan's rows are the consistent answers.
func (s *System) answerRewrite(ctx context.Context, v *queryView, dec *cqaplan.Decision, stats *Stats) (*engine.Result, error) {
	if h := testTierExecHook; h != nil {
		if err := h(); err != nil {
			return nil, err
		}
	}
	bound, err := engine.Rebind(dec.Plan, v.snap)
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	phys := engine.Optimize(bound)
	stats.JoinOrder = planLeafOrder(phys)
	stats.Streamed = true
	es := &ra.ExecStats{}
	res, err := v.snap.RunPlanRawContext(ra.WithExecStats(ctx, es), phys)
	if err != nil {
		return nil, err
	}
	stats.PeakIntermediate = es.PeakIntermediate()
	stats.Evaluation = time.Since(t0)
	return &engine.Result{Schema: bound.Schema(), Rows: res.Rows}, nil
}

// noteTier folds the run's final strategy into the lifetime counters and
// snapshots them into the stats.
func (s *System) noteTier(stats *Stats) {
	if stats.TierFallback {
		s.tierFallback.Add(1)
	}
	switch stats.Strategy {
	case cqaplan.TierRewrite.String():
		s.tierRewrite.Add(1)
	case cqaplan.TierHybrid.String():
		s.tierHybrid.Add(1)
	default:
		s.tierProver.Add(1)
	}
	stats.Tiers = s.TierCounts()
}

// isCtxErr reports whether err is (or wraps) a context cancellation: such
// failures propagate to the caller instead of triggering a tier fallback.
func isCtxErr(ctx context.Context, err error) bool {
	return ctx.Err() != nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
