package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"hippo/internal/constraint"
	"hippo/internal/engine"
)

// bigJoinSystem builds an instance whose self-join query is expensive to
// evaluate: n rows in two tables with a join predicate that matches many
// pairs, so full evaluation takes far longer than the deadlines the tests
// use.
func bigJoinSystem(t *testing.T, n int) *System {
	t.Helper()
	db := engine.New()
	mustExec(db, "CREATE TABLE a (id INT, grp INT)")
	mustExec(db, "CREATE TABLE b (id INT, grp INT)")
	var rows []string
	for i := 0; i < n; i++ {
		rows = append(rows, fmt.Sprintf("(%d, %d)", i, i%4))
	}
	mustExec(db, "INSERT INTO a VALUES "+strings.Join(rows, ", "))
	mustExec(db, "INSERT INTO b VALUES "+strings.Join(rows, ", "))
	s := NewSystem(db, []constraint.Constraint{
		constraint.FD{Rel: "a", LHS: []string{"id"}, RHS: []string{"grp"}},
	})
	if _, err := s.Analyze(); err != nil {
		t.Fatal(err)
	}
	return s
}

// grpJoin matches n^2/4 pairs — expensive to evaluate, and (because every
// a-row appears in many candidates) expensive to certify too.
const grpJoin = "SELECT * FROM a, b WHERE a.grp = b.grp"

// The core of the context refactor: a consistent query must die on a
// cancelled or expired context on BOTH evaluation paths. Before this
// test's change, the materialized path hardcoded context.Background() and
// ran to completion regardless of the caller's deadline.
func TestConsistentQueryContextDeadline(t *testing.T) {
	s := bigJoinSystem(t, 3000)
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"streamed", Options{}},
		{"materialized", Options{Materialized: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			// Reference: unconstrained evaluation of this query takes far
			// longer than the deadline (it produces ~n^2/4 candidates), so
			// finishing quickly below proves the deadline aborted work.
			const deadline = 50 * time.Millisecond
			ctx, cancel := context.WithTimeout(context.Background(), deadline)
			defer cancel()
			t0 := time.Now()
			_, _, err := s.ConsistentQueryContext(ctx, grpJoin, tc.opts)
			elapsed := time.Since(t0)
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("err = %v, want context.DeadlineExceeded", err)
			}
			// Generous bound for loaded CI machines; the E16 benchmark
			// measures the ~2x-deadline enforcement claim precisely.
			if elapsed > time.Second {
				t.Fatalf("deadline enforcement took %v (deadline %v)", elapsed, deadline)
			}
		})
	}
}

func TestConsistentQueryContextAlreadyCancelled(t *testing.T) {
	s := bigJoinSystem(t, 200)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, opts := range []Options{{}, {Materialized: true}} {
		if _, _, err := s.ConsistentQueryContext(ctx, grpJoin, opts); !errors.Is(err, context.Canceled) {
			t.Fatalf("opts %+v: err = %v, want context.Canceled", opts, err)
		}
	}
}

// A pinned-snapshot consistent query honors the context too.
func TestConsistentQueryAtContextDeadline(t *testing.T) {
	s := bigJoinSystem(t, 3000)
	sn, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer sn.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, _, err := s.ConsistentQueryAtContext(ctx, sn, grpJoin, Options{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// Plain (non-consistent) queries honor the context through the engine.
func TestPlainQueryContextDeadline(t *testing.T) {
	s := bigJoinSystem(t, 3000)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := s.DB().QueryContext(ctx, grpJoin); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// A cancelled context aborts a batch whole: nothing of it becomes
// visible, and the error names the statement the cancellation hit.
func TestExecBatchContextCancelled(t *testing.T) {
	db := engine.New()
	mustExec(db, "CREATE TABLE t (x INT)")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := db.ExecBatchContext(ctx, []string{
		"INSERT INTO t VALUES (1)",
		"INSERT INTO t VALUES (2)",
	})
	var be *engine.BatchError
	if !errors.As(err, &be) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want BatchError wrapping context.Canceled", err)
	}
	res, err := db.Query("SELECT * FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("cancelled batch left %d visible rows, want 0", len(res.Rows))
	}
}
