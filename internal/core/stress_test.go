package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"hippo/internal/constraint"
	"hippo/internal/engine"
)

// stressModel simulates the writer's update sequence and computes, after
// every prefix of applied statements, the expected consistent-answer set
// of SELECT * FROM log under the FD gid -> val.
//
// Every inserted row carries a unique val, so two live rows sharing a gid
// always violate the FD: the expected consistent answers are exactly the
// live rows whose gid group has size one.
type stressModel struct {
	live map[int][2]int // insertion step -> (gid, val)
	next int
}

type stressStep struct {
	insert   bool
	gid, val int
}

// stressScript builds the deterministic statement sequence plus the set
// of legal answer serializations (one per prefix).
func stressScript(steps int) ([]stressStep, map[string]int) {
	m := &stressModel{live: make(map[int][2]int)}
	script := make([]stressStep, 0, steps)
	legal := map[string]int{m.answerKey(): 0}
	for i := 0; i < steps; i++ {
		var st stressStep
		if i%7 == 6 && len(m.live) > 0 {
			// Delete the oldest live row.
			oldest := -1
			for k := range m.live {
				if oldest < 0 || k < oldest {
					oldest = k
				}
			}
			r := m.live[oldest]
			st = stressStep{insert: false, gid: r[0], val: r[1]}
			delete(m.live, oldest)
		} else {
			st = stressStep{insert: true, gid: i / 3, val: m.next}
			m.live[m.next] = [2]int{st.gid, st.val}
			m.next++
		}
		script = append(script, st)
		legal[m.answerKey()] = i + 1
	}
	return script, legal
}

// answerKey serializes the expected consistent answers: live rows whose
// gid group is a singleton, sorted.
func (m *stressModel) answerKey() string {
	count := map[int]int{}
	for _, r := range m.live {
		count[r[0]]++
	}
	var parts []string
	for _, r := range m.live {
		if count[r[0]] == 1 {
			parts = append(parts, fmt.Sprintf("(%d, %d)", r[0], r[1]))
		}
	}
	sort.Strings(parts)
	return strings.Join(parts, " ")
}

// TestConcurrentServingPrefixConsistency interleaves a writer applying a
// deterministic update sequence with concurrent ConsistentQuery readers
// and asserts snapshot monotonicity: every answer set equals the expected
// answers after some prefix of the applied statements, and the prefix a
// reader observes never moves backwards (epochs are monotone per reader).
// Run under -race in CI.
func TestConcurrentServingPrefixConsistency(t *testing.T) {
	const steps = 240
	script, legal := stressScript(steps)

	db := engine.New()
	mustExec(db, "CREATE TABLE log (gid INT, val INT)")
	s := NewSystem(db, []constraint.Constraint{
		constraint.FD{Rel: "log", LHS: []string{"gid"}, RHS: []string{"val"}},
	})
	if _, err := s.Analyze(); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	var wg sync.WaitGroup

	// Writer: one statement per step, in order.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for _, st := range script {
			if st.insert {
				mustExec(db, fmt.Sprintf("INSERT INTO log VALUES (%d, %d)", st.gid, st.val))
			} else {
				mustExec(db, fmt.Sprintf("DELETE FROM log WHERE gid = %d AND val = %d", st.gid, st.val))
			}
		}
	}()

	// Readers: continuously query; every answer must match some prefix.
	const readers = 4
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			lastEpoch := uint64(0)
			for {
				select {
				case <-done:
					return
				default:
				}
				res, st, err := s.ConsistentQuery("SELECT * FROM log", Options{})
				if err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				key := strings.Join(rowStrings(res.Rows), " ")
				if _, ok := legal[key]; !ok {
					t.Errorf("reader %d: answers %q match no prefix of the update sequence", r, key)
					return
				}
				if st.Epoch < lastEpoch {
					t.Errorf("reader %d: epoch went backwards (%d after %d)", r, st.Epoch, lastEpoch)
					return
				}
				lastEpoch = st.Epoch
			}
		}(r)
	}

	// One pinning reader: repeated queries at a pinned snapshot must be
	// identical to each other.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			sn, err := s.Snapshot()
			if err != nil {
				t.Errorf("snapshot: %v", err)
				return
			}
			var first string
			for i := 0; i < 3; i++ {
				res, _, err := s.ConsistentQueryAt(sn, "SELECT * FROM log", Options{})
				if err != nil {
					t.Errorf("pinned query: %v", err)
					sn.Close()
					return
				}
				key := strings.Join(rowStrings(res.Rows), " ")
				if i == 0 {
					first = key
					if _, ok := legal[key]; !ok {
						t.Errorf("pinned answers %q match no prefix", key)
						sn.Close()
						return
					}
				} else if key != first {
					t.Errorf("pinned view drifted between queries: %q vs %q", key, first)
					sn.Close()
					return
				}
			}
			sn.Close()
		}
	}()

	wg.Wait()

	// After the writer finishes, a final query must observe the full
	// sequence.
	res, _, err := s.ConsistentQuery("SELECT * FROM log", Options{})
	if err != nil {
		t.Fatal(err)
	}
	key := strings.Join(rowStrings(res.Rows), " ")
	if got := legal[key]; got != steps {
		// The key could coincidentally match an earlier prefix; compare
		// the serialized answers instead of the index.
		want := ""
		for k, v := range legal {
			if v == steps {
				want = k
			}
		}
		if key != want {
			t.Fatalf("final answers %q != expected full-sequence answers %q", key, want)
		}
	}
}
