package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"hippo/internal/constraint"
	"hippo/internal/engine"
	"hippo/internal/value"
)

// TestBatchAtomicityStress asserts the group-commit correctness bar under
// -race: readers only ever observe batch boundaries. A writer advances a
// table through generations, each generation swap being ONE batch that
// deletes the previous generation and inserts the next (same i keys, new
// gn). Under the FD i → gn, any interleaving of a partially applied swap
// would surface immediately: two generations sharing an i value conflict,
// so the consistent answer set would lose rows (or mix gn values). Every
// reader must therefore see exactly R rows, all from one generation, with
// generations nondecreasing per reader.
func TestBatchAtomicityStress(t *testing.T) {
	const (
		readers     = 4
		generations = 150
		rowsPerGen  = 8
	)
	db := engine.New()
	mustExec(db, "CREATE TABLE gen (gn INT, i INT)")
	fd := constraint.FD{Rel: "gen", LHS: []string{"i"}, RHS: []string{"gn"}}
	sys := NewSystem(db, []constraint.Constraint{fd})
	if _, err := sys.Analyze(); err != nil {
		t.Fatal(err)
	}
	seed := make([]string, 0, rowsPerGen)
	for i := 0; i < rowsPerGen; i++ {
		seed = append(seed, fmt.Sprintf("INSERT INTO gen VALUES (0, %d)", i))
	}
	if _, err := db.ExecBatch(seed); err != nil {
		t.Fatal(err)
	}

	var done atomic.Bool
	errs := make(chan error, readers+1)
	var wg sync.WaitGroup

	wg.Add(1)
	go func() { // writer: one atomic swap per generation
		defer wg.Done()
		defer done.Store(true)
		for g := 1; g <= generations; g++ {
			stmts := []string{fmt.Sprintf("DELETE FROM gen WHERE gn = %d", g-1)}
			for i := 0; i < rowsPerGen; i++ {
				stmts = append(stmts, fmt.Sprintf("INSERT INTO gen VALUES (%d, %d)", g, i))
			}
			if _, err := db.ExecBatch(stmts); err != nil {
				errs <- fmt.Errorf("writer generation %d: %w", g, err)
				return
			}
		}
	}()

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			lastGen := int64(-1)
			for !done.Load() {
				res, st, err := sys.ConsistentQuery("SELECT * FROM gen", Options{})
				if err != nil {
					errs <- fmt.Errorf("reader %d: %w", r, err)
					return
				}
				if len(res.Rows) == 0 && lastGen < 0 && st.Epoch == 1 {
					// Bounded staleness (documented in core.currentView):
					// while a refresh is in flight, readers are served the
					// newest PUBLISHED view — until the first post-seed
					// publication lands, that is the initial empty view
					// (epoch 1, from Analyze), which is itself a batch
					// boundary. Pinning the exemption to that epoch keeps
					// it from masking a real mid-batch empty view, which
					// would carry a later epoch.
					continue
				}
				if len(res.Rows) != rowsPerGen {
					errs <- fmt.Errorf("reader %d saw %d rows (a batch prefix), want %d: %v",
						r, len(res.Rows), rowsPerGen, res.Rows)
					return
				}
				gn := res.Rows[0][0]
				for _, row := range res.Rows {
					if !value.Equal(row[0], gn) {
						errs <- fmt.Errorf("reader %d saw mixed generations %v and %v", r, gn, row[0])
						return
					}
				}
				g := gn.I
				if g < lastGen {
					errs <- fmt.Errorf("reader %d went back in time: %d after %d", r, g, lastGen)
					return
				}
				lastGen = g
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// The final state is generation `generations`, fully intact.
	res, _, err := sys.ConsistentQuery(
		fmt.Sprintf("SELECT * FROM gen WHERE gn = %d", generations), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != rowsPerGen {
		t.Fatalf("final generation has %d rows, want %d", len(res.Rows), rowsPerGen)
	}
}
