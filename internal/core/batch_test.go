package core

import (
	"fmt"
	"sort"
	"testing"

	"hippo/internal/constraint"
	"hippo/internal/engine"
)

// newBatchSys builds r (FD a → b, with one conflict) and the
// unconstrained s, analyzed and ready.
func newBatchSys(t *testing.T) *System {
	t.Helper()
	db := engine.New()
	mustExec(db, "CREATE TABLE r (a INT, b INT)")
	mustExec(db, "CREATE TABLE s (a INT, b INT)")
	mustExec(db, "INSERT INTO r VALUES (1, 1), (1, 2), (2, 5), (3, 7)")
	mustExec(db, "INSERT INTO s VALUES (9, 9)")
	fd := constraint.FD{Rel: "r", LHS: []string{"a"}, RHS: []string{"b"}}
	sys := NewSystem(db, []constraint.Constraint{fd})
	if _, err := sys.Analyze(); err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestBatchTransientLeaksNothing is the coalescing-edge-case regression:
// a tuple inserted and deleted within one batch never became visible, so
// it must trigger neither a delta probe nor a cache invalidation — cached
// verdicts that depend on the tuple's absence keep serving.
func TestBatchTransientLeaksNothing(t *testing.T) {
	sys := newBatchSys(t)
	const q = "SELECT * FROM r EXCEPT SELECT * FROM s"

	// Warm the verdict cache: every candidate's verdict depends on its own
	// membership in s (negative atoms).
	first, err := runQ(sys, q)
	if err != nil {
		t.Fatal(err)
	}
	base := sys.CacheStats()
	maintBase := sys.Maintenance()

	// One real delta plus a transient pair: (2,5) enters and leaves s
	// within the batch. Statement-at-a-time this would flip the membership
	// dependency of candidate (2,5) twice and invalidate its verdict; as a
	// batch it must be invisible.
	if _, err := sys.DB().ExecBatch([]string{
		"INSERT INTO s VALUES (999, 999)",
		"INSERT INTO s VALUES (2, 5)",
		"DELETE FROM s WHERE a = 2",
	}); err != nil {
		t.Fatal(err)
	}

	again, err := runQ(sys, q)
	if err != nil {
		t.Fatal(err)
	}
	if tupleKey(first) != tupleKey(again) {
		t.Fatalf("answers changed after no-op-visible batch:\nbefore: %s\nafter:  %s",
			tupleKey(first), tupleKey(again))
	}
	cs := sys.CacheStats().Sub(base)
	if cs.Invalidated != 0 {
		t.Errorf("transient pair invalidated %d cache entries, want 0", cs.Invalidated)
	}
	if cs.Misses != 0 {
		t.Errorf("re-run had %d cache misses, want 0 (all verdicts preserved)", cs.Misses)
	}
	m := sys.Maintenance().Sub(maintBase)
	if m.DeltasApplied != 1 {
		t.Errorf("deltas applied = %d, want 1 (only the real insert survives coalescing)", m.DeltasApplied)
	}

	// Contrast: the same transient pair statement-at-a-time does flip the
	// membership dependency and re-certifies the affected candidate.
	db := sys.DB()
	mustExec(db, "INSERT INTO s VALUES (2, 5)")
	mustExec(db, "DELETE FROM s WHERE a = 2")
	base = sys.CacheStats()
	third, err := runQ(sys, q)
	if err != nil {
		t.Fatal(err)
	}
	if tupleKey(first) != tupleKey(third) {
		t.Fatalf("answers changed after transient statements:\n%s\nvs %s", tupleKey(first), tupleKey(third))
	}
	if cs := sys.CacheStats().Sub(base); cs.Misses == 0 {
		t.Error("statement-at-a-time transient should have invalidated at least one verdict")
	}
}

// TestBatchSameKeyReinsert covers the other coalescer edge: an update
// written as delete(old)+insert(new) with identical values lands on a new
// RowID, survives coalescing, and leaves hypergraph and answers exactly as
// statement-at-a-time application would.
func TestBatchSameKeyReinsert(t *testing.T) {
	seq := newBatchSys(t)
	bat := newBatchSys(t)
	stmts := []string{
		"DELETE FROM r WHERE a = 1 AND b = 2",
		"INSERT INTO r VALUES (1, 2)", // same values, new RowID
		"DELETE FROM r WHERE a = 3",
		"INSERT INTO r VALUES (3, 8)", // replaces (3,7) with a new value
	}
	for _, s := range stmts {
		mustExec(seq.DB(), s)
	}
	if _, err := bat.DB().ExecBatch(stmts); err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{
		"SELECT * FROM r",
		"SELECT * FROM r EXCEPT SELECT * FROM s",
		"SELECT * FROM r WHERE b > 1",
	} {
		a, err := runQ(seq, q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := runQ(bat, q)
		if err != nil {
			t.Fatal(err)
		}
		if tupleKey(a) != tupleKey(b) {
			t.Errorf("query %q: sequential %s vs batched %s", q, tupleKey(a), tupleKey(b))
		}
	}
	gs, gb := seq.GraphStats(), bat.GraphStats()
	if gs != gb {
		t.Errorf("hypergraph diverged: sequential %+v vs batched %+v", gs, gb)
	}
}

func runQ(sys *System, q string) (*engine.Result, error) {
	// The batch tests assert verdict-cache behavior, so pin the prover
	// tier (the rewrite tier certifies nothing and would never touch it).
	res, _, err := sys.ConsistentQuery(q, Options{Tier: TierForceProver})
	return res, err
}

func tupleKey(res *engine.Result) string {
	keys := make([]string, 0, len(res.Rows))
	for _, r := range res.Rows {
		keys = append(keys, r.Key())
	}
	sort.Strings(keys)
	return fmt.Sprint(keys)
}
