package core

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"hippo/internal/constraint"
	"hippo/internal/engine"
)

// TestShardedScatterGatherStress is the sharded counterpart of
// TestConcurrentServingPrefixConsistency: a writer applies a deterministic
// update sequence while concurrent consistent readers scatter
// certification across K shards, asserting prefix consistency (every
// answer set matches some prefix of the applied statements) and per-reader
// epoch monotonicity, with cross-checks against an unsharded system fed
// the same sequence. After shutdown a goroutine-leak gate verifies the
// scatter/gather and maintenance machinery unwound completely. Run under
// -race in CI.
func TestShardedScatterGatherStress(t *testing.T) {
	const steps = 240
	script, legal := stressScript(steps)

	baseline := runtime.NumGoroutine()

	for _, k := range []int{2, 4} {
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			db := engine.New()
			mustExec(db, "CREATE TABLE log (gid INT, val INT)")
			s := NewSystemShards(db, []constraint.Constraint{
				constraint.FD{Rel: "log", LHS: []string{"gid"}, RHS: []string{"val"}},
			}, k)
			if _, err := s.Analyze(); err != nil {
				t.Fatal(err)
			}

			done := make(chan struct{})
			var wg sync.WaitGroup

			// Writer: alternate single statements and small batches so both
			// the per-delta and the batch change-feed paths drain through
			// the parallel fold.
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer close(done)
				i := 0
				for i < len(script) {
					if i%5 == 0 && i+2 <= len(script) && script[i].insert && script[i+1].insert {
						if _, err := db.ExecBatch([]string{
							fmt.Sprintf("INSERT INTO log VALUES (%d, %d)", script[i].gid, script[i].val),
							fmt.Sprintf("INSERT INTO log VALUES (%d, %d)", script[i+1].gid, script[i+1].val),
						}); err != nil {
							t.Errorf("batch: %v", err)
							return
						}
						i += 2
						continue
					}
					st := script[i]
					if st.insert {
						mustExec(db, fmt.Sprintf("INSERT INTO log VALUES (%d, %d)", st.gid, st.val))
					} else {
						mustExec(db, fmt.Sprintf("DELETE FROM log WHERE gid = %d AND val = %d", st.gid, st.val))
					}
					i++
				}
			}()

			// Readers: scatter/gather certification across the K shards;
			// answers must match a prefix, epochs must be monotone.
			const readers = 4
			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					lastEpoch := uint64(0)
					for {
						select {
						case <-done:
							return
						default:
						}
						res, st, err := s.ConsistentQuery("SELECT * FROM log", Options{})
						if err != nil {
							t.Errorf("reader %d: %v", r, err)
							return
						}
						key := strings.Join(rowStrings(res.Rows), " ")
						if _, ok := legal[key]; !ok {
							t.Errorf("reader %d: answers %q match no prefix of the update sequence", r, key)
							return
						}
						if st.Epoch < lastEpoch {
							t.Errorf("reader %d: epoch went backwards (%d after %d)", r, st.Epoch, lastEpoch)
							return
						}
						if st.Shards != k {
							t.Errorf("reader %d: served with shards=%d, want %d", r, st.Shards, k)
							return
						}
						lastEpoch = st.Epoch
					}
				}(r)
			}

			wg.Wait()

			// The final answers must observe the full sequence.
			res, _, err := s.ConsistentQuery("SELECT * FROM log", Options{})
			if err != nil {
				t.Fatal(err)
			}
			key := strings.Join(rowStrings(res.Rows), " ")
			want := ""
			for kk, v := range legal {
				if v == steps {
					want = kk
				}
			}
			if key != want {
				t.Fatalf("final answers %q != expected full-sequence answers %q", key, want)
			}
			if m := s.Maintenance(); m.FullRebuilds != 1 {
				t.Errorf("sharded stress ran %d full rebuilds, want 1", m.FullRebuilds)
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}

	// Goroutine-leak gate: after both systems closed, the count must settle
	// back to the pre-test baseline (modulo runtime helpers that may take a
	// moment to park).
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak after shutdown: %d running, baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:n])
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}
