// Package core implements the Hippo system pipeline from Figure 1 of the
// paper:
//
//	IC + DB ──► Conflict Detection ──► Conflict Hypergraph
//	Query ──► Enveloping ──► Candidates ──► Evaluation (RDBMS)
//	Candidates + Hypergraph ──► Prover ──► Answer Set
//
// A System wraps a database and a constraint set; Analyze runs conflict
// detection once, and ConsistentQuery computes the consistent answers to
// an SJUD query without materializing repairs.
package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hippo/internal/conflict"
	"hippo/internal/constraint"
	"hippo/internal/engine"
	"hippo/internal/envelope"
	"hippo/internal/prover"
	"hippo/internal/ra"
	"hippo/internal/repair"
	"hippo/internal/rewrite"
	"hippo/internal/sqlparse"
	"hippo/internal/storage"
)

// ProverMode selects how the Prover answers membership checks.
type ProverMode int

const (
	// ProverIndexed answers membership checks from in-memory full-row
	// indexes — the paper's optimized variant that issues no database
	// queries per check.
	ProverIndexed ProverMode = iota
	// ProverNaive issues one engine query per membership check — the
	// paper's base version, kept for the E6 optimization experiment.
	ProverNaive
)

// String names the mode.
func (m ProverMode) String() string {
	if m == ProverNaive {
		return "naive"
	}
	return "indexed"
}

// Options tune a consistent-query run.
type Options struct {
	Mode ProverMode
	// DisablePruning turns off early independence pruning in the prover
	// (ablation).
	DisablePruning bool
}

// Stats reports one ConsistentQuery run, stage by stage (mirroring the
// paper's Figure 1 components).
type Stats struct {
	Envelope     time.Duration // Enveloping: plan validation + rewrite
	Evaluation   time.Duration // Evaluation of the envelope by the engine
	ProverTime   time.Duration // Prover over all candidates
	Total        time.Duration
	Candidates   int // tuples produced by the envelope
	Answers      int // consistent answers
	ProverStats  prover.Stats
	EngineQuery  int64 // engine queries issued during the run
	DetectStats  conflict.DetectStats
	GraphStats   conflict.Stats
	Maintenance  MaintenanceStats // hypergraph upkeep since system creation
	ProverMode   ProverMode
	Workers      int    // certification worker-pool size used
	QueryPlan    string // formatted input plan
	EnvelopePlan string // formatted envelope plan
}

// MaintenanceStats accumulates conflict-hypergraph upkeep over the
// system's lifetime: the incremental-detector counters (how many DML
// deltas were folded in and what they did to the edge set) plus how often
// a full Detect rescan was still required (first analysis, DDL, or
// constraint changes).
type MaintenanceStats struct {
	conflict.IncrementalStats
	FullRebuilds int64 // full Detect runs (incl. the first analysis)
}

// Sub returns the counter-wise difference m - o.
func (m MaintenanceStats) Sub(o MaintenanceStats) MaintenanceStats {
	return MaintenanceStats{
		IncrementalStats: m.IncrementalStats.Sub(o.IncrementalStats),
		FullRebuilds:     m.FullRebuilds - o.FullRebuilds,
	}
}

// System is a Hippo instance: a database, its integrity constraints, and
// the conflict hypergraph computed from them. It subscribes to the
// engine's change feed: DML deltas queue up and are folded into the
// hypergraph incrementally by the next consistent query, while DDL and
// constraint changes force a full re-detection.
type System struct {
	db *engine.DB

	// mu guards all fields below. Writers (delta application, full
	// rebuilds, constraint/DDL bookkeeping) take the write lock; a
	// consistent query holds the read lock across evaluation and
	// certification so the hypergraph it certifies against cannot be
	// mutated mid-run by a concurrent query's delta drain. Note this
	// serializes analysis state only: DML running concurrently with
	// queries is additionally governed by the storage contract (table
	// writers must not run concurrently with readers).
	mu          sync.RWMutex
	constraints []constraint.Constraint
	hg          *conflict.Hypergraph
	ti          *conflict.TupleIndex
	inc         *conflict.IncrementalDetector
	detStats    conflict.DetectStats
	analyzed    bool             // a hypergraph exists
	needFull    bool             // DDL/constraint change since it was built
	pending     []conflict.Delta // queued DML deltas awaiting application
	maint       MaintenanceStats
}

// NewSystem creates a Hippo system over db with the given constraints and
// subscribes it to db's change feed. Call Analyze (or let the first query
// trigger it) before querying, and Close when discarding the system while
// the database lives on.
func NewSystem(db *engine.DB, cs []constraint.Constraint) *System {
	s := &System{db: db, constraints: cs}
	db.AddListener(s)
	return s
}

// Close unsubscribes the system from the database's change feed and drops
// any queued deltas. The system must not be queried afterwards.
func (s *System) Close() {
	s.db.RemoveListener(s)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pending = nil
}

// DB exposes the underlying engine (for loading data and running ordinary
// SQL).
func (s *System) DB() *engine.DB { return s.db }

// Constraints returns a copy of the constraint set.
func (s *System) Constraints() []constraint.Constraint {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]constraint.Constraint, len(s.constraints))
	copy(out, s.constraints)
	return out
}

// AddConstraint registers another constraint and schedules a full
// re-detection (incremental probes are compiled per constraint set).
func (s *System) AddConstraint(c constraint.Constraint) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.constraints = append(s.constraints, c)
	s.needFull = true
	s.pending = nil
}

// maxPendingDeltas caps the delta queue. Past it, a bulk load is under
// way and one full re-detection is both cheaper than replaying the queue
// probe by probe and O(1) in queued memory.
const maxPendingDeltas = 65536

// DataChanged queues a DML delta for incremental application. It
// implements engine.ChangeListener.
func (s *System) DataChanged(table string, ch storage.Change) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.analyzed || s.needFull {
		return // the coming full detection sees the current data anyway
	}
	if len(s.pending) >= maxPendingDeltas {
		s.needFull = true
		s.pending = nil
		return
	}
	s.pending = append(s.pending, conflict.Delta{Table: table, Change: ch})
}

// SchemaChanged schedules a full re-detection: DDL changes the relation
// set the tuple index and compiled probes are built over. It implements
// engine.ChangeListener.
func (s *System) SchemaChanged(string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.needFull = true
	s.pending = nil
}

// Invalidate forces a full re-detection before the next consistent query.
// DML no longer requires it (deltas are maintained automatically); it
// remains for callers that mutate storage behind the engine's back.
func (s *System) Invalidate() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.needFull = true
	s.pending = nil
}

// Analyze runs Conflict Detection and builds the Conflict Hypergraph from
// scratch, discarding any queued deltas (the rescan subsumes them).
func (s *System) Analyze() (conflict.DetectStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.analyzeFullLocked()
}

func (s *System) analyzeFullLocked() (conflict.DetectStats, error) {
	h, ti, st, err := conflict.NewDetector(s.db).Detect(s.constraints)
	if err != nil {
		return st, err
	}
	inc, err := conflict.NewIncrementalDetector(s.db, h, s.constraints)
	if err != nil {
		return st, err
	}
	s.hg, s.ti, s.inc, s.detStats = h, ti, inc, st
	s.analyzed, s.needFull = true, false
	s.pending = nil
	s.maint.FullRebuilds++
	return st, nil
}

// Hypergraph returns the live conflict hypergraph (Analyze must have
// run). The graph is mutated in place by later delta drains; callers that
// keep it across queries running concurrently with DML must Clone it.
func (s *System) Hypergraph() *conflict.Hypergraph {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.hg
}

// GraphStats summarizes the live hypergraph under the system lock —
// unlike Hypergraph().Stats(), it is safe against concurrent delta
// drains.
func (s *System) GraphStats() conflict.Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.hg.Stats()
}

// Maintenance reports accumulated hypergraph-maintenance statistics.
func (s *System) Maintenance() MaintenanceStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.maint
}

// PendingDeltas returns the number of queued DML deltas not yet folded
// into the hypergraph.
func (s *System) PendingDeltas() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.pending)
}

// ensureAnalyzed brings the hypergraph up to date: a full Detect on
// first use or after DDL/constraint changes, otherwise by draining the
// queued DML deltas through the incremental detector.
func (s *System) ensureAnalyzed() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ensureAnalyzedLocked()
}

func (s *System) ensureAnalyzedLocked() error {
	if !s.analyzed || s.needFull {
		_, err := s.analyzeFullLocked()
		return err
	}
	if len(s.pending) == 0 {
		return nil
	}
	before := s.inc.Stats()
	for _, d := range s.pending {
		if err := s.inc.Apply(d); err != nil {
			// A probe failure leaves the hypergraph half-updated; recover
			// with a full rescan rather than serving wrong answers.
			if _, ferr := s.analyzeFullLocked(); ferr != nil {
				return ferr
			}
			return nil
		}
	}
	s.pending = nil
	s.maint.IncrementalStats.Add(s.inc.Stats().Sub(before))
	return nil
}

// ConsistentQuery computes the consistent answers to an SJUD SQL query.
func (s *System) ConsistentQuery(sql string, opts Options) (*engine.Result, *Stats, error) {
	q, err := sqlparse.ParseQuery(sql)
	if err != nil {
		return nil, nil, err
	}
	plan, err := s.db.PlanQuery(q)
	if err != nil {
		return nil, nil, err
	}
	return s.ConsistentQueryPlan(plan, opts)
}

// ConsistentQueryPlan computes consistent answers for an already-planned
// query. A top-level ORDER BY / LIMIT decorates the certified answer set:
// the SJUD core is certified first, then ordering and truncation apply to
// the consistent answers (certainty is a property of the set, so this is
// the only coherent reading).
func (s *System) ConsistentQueryPlan(plan ra.Node, opts Options) (*engine.Result, *Stats, error) {
	if err := s.ensureAnalyzed(); err != nil {
		return nil, nil, err
	}
	// Hold the read lock for the rest of the run: evaluation and
	// certification read the hypergraph and tuple index, which a
	// concurrent query's delta drain must not mutate underneath us.
	s.mu.RLock()
	defer s.mu.RUnlock()
	hg, ti := s.hg, s.ti
	// Peel trailing Sort/Limit decorators (outermost first).
	var decorators []func(ra.Node) ra.Node
	for {
		switch p := plan.(type) {
		case *ra.Sort:
			keys := p.Keys
			decorators = append(decorators, func(n ra.Node) ra.Node { return &ra.Sort{Child: n, Keys: keys} })
			plan = p.Child
			continue
		case *ra.Limit:
			nLim := p.N
			decorators = append(decorators, func(n ra.Node) ra.Node { return &ra.Limit{Child: n, N: nLim} })
			plan = p.Child
			continue
		}
		break
	}
	start := time.Now()
	stats := &Stats{
		ProverMode:  opts.Mode,
		DetectStats: s.detStats,
		GraphStats:  hg.Stats(),
		Maintenance: s.maint,
		QueryPlan:   ra.Format(plan),
	}
	queriesBefore := s.db.QueryCount()

	// Enveloping.
	t0 := time.Now()
	env, err := envelope.Envelope(plan)
	if err != nil {
		return nil, nil, err
	}
	stats.EnvelopePlan = ra.Format(env)
	stats.Envelope = time.Since(t0)

	// Evaluation of the envelope by the engine.
	t0 = time.Now()
	candidates, err := s.db.RunPlan(env)
	if err != nil {
		return nil, nil, err
	}
	stats.Evaluation = time.Since(t0)
	stats.Candidates = len(candidates.Rows)

	// Prover: keep candidates that hold in every repair. Each membership
	// check is independent, so certification fans out over a bounded pool
	// of workers (one prover each — the hypergraph and tuple index are
	// read-only here) and results are collected by candidate position, so
	// the answer order matches the sequential run exactly.
	t0 = time.Now()
	var member prover.Membership
	if opts.Mode == ProverNaive {
		member = prover.NaiveMembership{DB: s.db, TI: ti}
	} else {
		member = prover.IndexedMembership{TI: ti}
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(candidates.Rows) {
		workers = len(candidates.Rows)
	}
	if workers < 1 {
		workers = 1
	}
	stats.Workers = workers
	keep := make([]bool, len(candidates.Rows))
	provers := make([]*prover.Prover, workers)
	errs := make([]error, workers)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		p := prover.New(hg, member)
		p.DisablePruning = opts.DisablePruning
		provers[w] = p
		wg.Add(1)
		go func(w int, p *prover.Prover) {
			defer wg.Done()
			for !failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= len(candidates.Rows) {
					return
				}
				ok, err := p.IsConsistentAnswer(plan, candidates.Rows[i])
				if err != nil {
					errs[w] = err
					failed.Store(true)
					return
				}
				keep[i] = ok
			}
		}(w, p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	answers := &engine.Result{Schema: plan.Schema()}
	for i, cand := range candidates.Rows {
		if keep[i] {
			answers.Rows = append(answers.Rows, cand)
		}
	}
	stats.ProverTime = time.Since(t0)
	for _, p := range provers {
		stats.ProverStats.Add(p.Stats)
	}
	stats.Answers = len(answers.Rows)

	// Re-apply ORDER BY / LIMIT to the certified answers (innermost
	// decorator first, i.e. reverse peel order).
	if len(decorators) > 0 {
		node := ra.Node(&ra.Values{Sch: answers.Schema, Rows: answers.Rows})
		for i := len(decorators) - 1; i >= 0; i-- {
			node = decorators[i](node)
		}
		rows, err := ra.Materialize(node)
		if err != nil {
			return nil, nil, err
		}
		answers = &engine.Result{Schema: node.Schema(), Rows: rows}
	}
	stats.EngineQuery = s.db.QueryCount() - queriesBefore
	stats.Total = time.Since(start)
	return answers, stats, nil
}

// Rewriter returns the query-rewriting baseline prepared for this
// system's constraints (erroring if they are outside its class).
func (s *System) Rewriter() (*rewrite.Rewriter, error) {
	return rewrite.New(s.db, s.constraints)
}

// RepairEnumerator returns the exponential repair oracle for this system
// (small instances only). The enumerator gets a clone of the hypergraph:
// it outlives this call, and the live graph may be mutated by later delta
// drains.
func (s *System) RepairEnumerator() (*repair.Enumerator, error) {
	if err := s.ensureAnalyzed(); err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return &repair.Enumerator{DB: s.db, H: s.hg.Clone()}, nil
}

// SupportSummary describes which execution strategies can handle a query,
// powering the expressiveness matrix of experiment E2.
type SupportSummary struct {
	Query   string
	Hippo   error // nil when supported
	Rewrite error // nil when supported
}

// Support probes whether Hippo and the rewriting baseline accept the
// query/constraint combination without executing it.
func (s *System) Support(sql string) (SupportSummary, error) {
	out := SupportSummary{Query: sql}
	q, err := sqlparse.ParseQuery(sql)
	if err != nil {
		return out, err
	}
	plan, err := s.db.PlanQuery(q)
	if err != nil {
		return out, err
	}
	out.Hippo = envelope.CheckQuery(plan)
	rw, err := rewrite.New(s.db, s.constraints)
	if err != nil {
		out.Rewrite = err
	} else if _, err := rw.Rewrite(plan); err != nil {
		out.Rewrite = err
	}
	return out, nil
}

// FormatStats renders a run's statistics as a compact multi-line report.
func FormatStats(st *Stats) string {
	return fmt.Sprintf(
		"mode=%s candidates=%d answers=%d workers=%d\n"+
			"envelope=%v evaluation=%v prover=%v total=%v\n"+
			"membership-checks=%d disjuncts=%d blocker-choices=%d engine-queries=%d\n"+
			"hypergraph: edges=%d conflicting-tuples=%d max-degree=%d\n"+
			"maintenance: deltas=%d edges+%d edges-%d full-rebuilds=%d",
		st.ProverMode, st.Candidates, st.Answers, st.Workers,
		st.Envelope, st.Evaluation, st.ProverTime, st.Total,
		st.ProverStats.MembershipChecks, st.ProverStats.Disjuncts,
		st.ProverStats.BlockerChoices, st.EngineQuery,
		st.GraphStats.Edges, st.GraphStats.ConflictingVertices, st.GraphStats.MaxDegree,
		st.Maintenance.DeltasApplied, st.Maintenance.EdgesAdded,
		st.Maintenance.EdgesRemoved, st.Maintenance.FullRebuilds)
}
