// Package core implements the Hippo system pipeline from Figure 1 of the
// paper:
//
//	IC + DB ──► Conflict Detection ──► Conflict Hypergraph
//	Query ──► Enveloping ──► Candidates ──► Evaluation (RDBMS)
//	Candidates + Hypergraph ──► Prover ──► Answer Set
//
// A System wraps a database and a constraint set; Analyze runs conflict
// detection once, and ConsistentQuery computes the consistent answers to
// an SJUD query without materializing repairs.
//
// # Concurrency model
//
// The serving path is snapshot-isolated. Writers stream DML deltas into a
// queue; when a consistent query finds the queue non-empty it briefly
// freezes writers, folds the deltas into the hypergraph, snapshots the
// storage (copy-on-write slabs, O(slabs)), and atomically publishes an
// immutable query view: {storage snapshot, hypergraph snapshot, tuple
// index, stats}. Every other query — and every query while the queue is
// empty — runs entirely lock-free against the published view, so any
// number of ConsistentQuery calls proceed concurrently with each other
// and with writers. Retired views are reclaimed by epoch: a pinned
// Snapshot keeps its view (and the slabs only it references) alive until
// Close.
package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hippo/internal/conflict"
	"hippo/internal/constraint"
	"hippo/internal/cqaplan"
	"hippo/internal/engine"
	"hippo/internal/envelope"
	"hippo/internal/prover"
	"hippo/internal/ra"
	"hippo/internal/repair"
	"hippo/internal/rewrite"
	"hippo/internal/sqlparse"
	"hippo/internal/storage"
	"hippo/internal/value"
	"hippo/internal/verdictcache"
	"hippo/internal/wal"
)

// ProverMode selects how the Prover answers membership checks.
type ProverMode int

const (
	// ProverIndexed answers membership checks from in-memory full-row
	// indexes — the paper's optimized variant that issues no database
	// queries per check.
	ProverIndexed ProverMode = iota
	// ProverNaive issues one engine query per membership check — the
	// paper's base version, kept for the E6 optimization experiment.
	ProverNaive
)

// String names the mode.
func (m ProverMode) String() string {
	if m == ProverNaive {
		return "naive"
	}
	return "indexed"
}

// Options tune a consistent-query run.
type Options struct {
	Mode ProverMode
	// DisablePruning turns off early independence pruning in the prover
	// (ablation).
	DisablePruning bool
	// Serialized disables lock-free snapshot serving for this call: the
	// query refreshes the view under the exclusive system lock and runs
	// under the shared lock, reproducing the pre-snapshot architecture.
	// It exists as the baseline of the E11 concurrency experiment.
	Serialized bool
	// DisableVerdictCache bypasses the per-candidate verdict memo for
	// this call: every candidate is re-certified from scratch. It is the
	// baseline of the E12 experiment and a differential-testing knob.
	DisableVerdictCache bool
	// GlobalCertification disables the component decomposition in the
	// prover: one blocking-edge search over all negative atoms jointly,
	// as before component maintenance existed. Implies an uncached run.
	GlobalCertification bool
	// Materialized disables streaming evaluation: the envelope is fully
	// materialized through the legacy access-path-only plan before any
	// certification starts, reproducing the pre-planner pipeline. It is
	// the baseline of the E15 experiment and a differential-testing knob.
	Materialized bool
	// Tier constrains the tiered answering planner: TierAuto (default)
	// lets the classifier route eligible queries to the rewrite or hybrid
	// tier, TierForceProver pins the certification path, and
	// TierRequireRewrite errors unless the rewrite tier fires. Any
	// certification-tuning option above implies TierForceProver — those
	// runs exist to measure the prover plane.
	Tier TierSelect
}

// Stats reports one ConsistentQuery run, stage by stage (mirroring the
// paper's Figure 1 components).
type Stats struct {
	Envelope     time.Duration // Enveloping: plan validation + rewrite
	Evaluation   time.Duration // Evaluation of the envelope by the engine
	ProverTime   time.Duration // Prover over all candidates
	Total        time.Duration
	Candidates   int   // tuples produced by the envelope
	Answers      int   // consistent answers
	CacheHits    int64 // candidates answered from the verdict cache
	CacheMisses  int64 // candidates certified and stored
	ProverStats  prover.Stats
	EngineQuery  int64 // engine queries issued during the run
	DetectStats  conflict.DetectStats
	GraphStats   conflict.Stats
	Maintenance  MaintenanceStats // hypergraph upkeep since system creation
	ProverMode   ProverMode
	Epoch        uint64 // epoch of the query view the run was served from
	Workers      int    // certification worker-pool size used
	Shards       int    // certification shards (K) of the serving system
	QueryPlan    string // formatted input plan
	EnvelopePlan string // formatted envelope plan
	// Streamed reports whether the run used the streaming pipeline
	// (envelope rows certified as produced) or the materialized baseline.
	Streamed bool
	// JoinOrder is the planner-chosen base-relation access order of the
	// envelope's physical plan (streaming runs only).
	JoinOrder string
	// PeakIntermediate is the per-query intermediate high-water mark in
	// rows: the largest row set any single blocking operator held
	// materialized (streaming), or the full candidate count (materialized
	// baseline, which holds the whole envelope output at once).
	PeakIntermediate int64
	// Strategy names the tier that produced the answers: "rewrite"
	// (compiled first-order plan, zero certification), "hybrid"
	// (residue-prefiltered envelope, certified survivors), or "prover"
	// (full certification).
	Strategy string
	// TierReasons lists the classifier's reasons for ruling out the
	// faster tiers (empty when the rewrite tier served the query).
	TierReasons []string
	// Classify is the tier-classification time; plan-cache hits make it
	// near zero, so it bounds the overhead ineligible queries pay.
	Classify time.Duration
	// TierFallback reports that a compiled fast-tier plan failed at run
	// time and the prover tier silently re-served the query.
	TierFallback bool
	// Tiers snapshots the system's lifetime per-tier counters after this
	// run was counted.
	Tiers TierCounters
}

// MaintenanceStats accumulates conflict-hypergraph and snapshot upkeep
// over the system's lifetime: the incremental-detector counters (how many
// DML deltas were folded in and what they did to the edge set), how often
// a full Detect rescan was still required (first analysis, DDL, or
// constraint changes), and the epoch-reclamation counters of the
// snapshot-serving path.
type MaintenanceStats struct {
	conflict.IncrementalStats
	FullRebuilds   int64 // full Detect runs (incl. the first analysis)
	ViewsPublished int64 // query views published (== current epoch)
	ViewsReclaimed int64 // retired views dropped after their last unpin
	SlabsReclaimed int64 // storage slabs uniquely retired by those views
	// Migrations counts components moved between certification shards by
	// cross-shard merges; ShardReclaims counts emptied shards whose state
	// was released. Both stay 0 in the unsharded (K=1) configuration.
	Migrations    int64
	ShardReclaims int64
	// EagerFolds counts view publications performed by the background
	// maintainer off the query path (see maintain.go); PendingOverflows
	// counts delta-queue overflows that discarded the queue and forced a
	// full re-detection (see maxPendingDeltas).
	EagerFolds       int64
	PendingOverflows int64
	// Cache is the verdict cache's lifetime counters, snapshotted at the
	// view's publication (System.CacheStats reads them live).
	Cache verdictcache.Stats
}

// Sub returns the counter-wise difference m - o.
func (m MaintenanceStats) Sub(o MaintenanceStats) MaintenanceStats {
	return MaintenanceStats{
		IncrementalStats: m.IncrementalStats.Sub(o.IncrementalStats),
		FullRebuilds:     m.FullRebuilds - o.FullRebuilds,
		ViewsPublished:   m.ViewsPublished - o.ViewsPublished,
		ViewsReclaimed:   m.ViewsReclaimed - o.ViewsReclaimed,
		SlabsReclaimed:   m.SlabsReclaimed - o.SlabsReclaimed,
		Migrations:       m.Migrations - o.Migrations,
		ShardReclaims:    m.ShardReclaims - o.ShardReclaims,
		EagerFolds:       m.EagerFolds - o.EagerFolds,
		PendingOverflows: m.PendingOverflows - o.PendingOverflows,
		Cache:            m.Cache.Sub(o.Cache),
	}
}

// queryView is one immutable published serving state. Everything a
// consistent query reads lives here, so queries need no locks.
type queryView struct {
	epoch      uint64
	snap       *engine.Snapshot
	hg         *conflict.ShardedSnapshot
	ti         *conflict.TupleIndex
	detStats   conflict.DetectStats
	graphStats conflict.Stats
	maint      MaintenanceStats
	shards     int
}

// retiredView is a replaced view still pinned by at least one Snapshot,
// plus the slab count uniquely retired when it was replaced.
type retiredView struct {
	v     *queryView
	slabs int
}

// System is a Hippo instance: a database, its integrity constraints, and
// the conflict hypergraph computed from them. It subscribes to the
// engine's change feed: DML deltas queue up and are folded into the
// hypergraph incrementally by the next consistent query, while DDL and
// constraint changes force a full re-detection.
type System struct {
	db *engine.DB

	// view is the atomically published immutable serving state; stale
	// flags that queued work invalidates it. The fast path loads stale
	// then view and never locks. Publication happens inside the engine
	// write freeze in the order view.Store then stale.Store(false), so a
	// reader that observes stale==false loads at least that publication's
	// view — which contains every write sequenced before it.
	view  atomic.Pointer[queryView]
	stale atomic.Bool

	// mu serializes view publication and guards the analysis state below.
	// The Serialized (baseline) query mode additionally read-locks it
	// across a run, reproducing the old architecture's contention.
	mu          sync.RWMutex
	constraints []constraint.Constraint
	hg          *conflict.ShardedHypergraph
	// shards is the certification-plane shard count K, fixed at system
	// creation. K = 1 (the default) delegates every operation to a single
	// Hypergraph and drains deltas sequentially — bit-identical to the
	// pre-shard path; K > 1 partitions the hypergraph by connected
	// component and drains/invalidate in parallel.
	shards   int
	inc      *conflict.IncrementalDetector
	detStats conflict.DetectStats
	epoch    uint64
	maint    MaintenanceStats

	// qmu guards the delta queue shared with the engine's change feed.
	// Writers only ever take qmu (never mu), so DML is never blocked
	// behind a long analysis or a serialized query.
	qmu      sync.Mutex
	pending  []conflict.Delta // queued DML deltas awaiting application
	analyzed bool             // a hypergraph exists
	needFull bool             // DDL/constraint change since it was built

	// pmu guards epoch pins and retired views.
	pmu     sync.Mutex
	pins    map[uint64]int
	retired []retiredView

	// vcache memoizes certification verdicts across published views; it
	// is invalidated delta-precisely at each publication and cleared on
	// full re-detections. Internally synchronized.
	vcache *verdictcache.Cache

	// cepoch counts constraint-set and schema changes; it keys the
	// prepared rewriter below and the compiled tier-plan cache, so both
	// invalidate the moment a constraint registers or DDL runs. rwmu
	// guards the rewriter memo (rwmu is a leaf lock: it is never held
	// while taking mu, only around Prepare which read-locks mu).
	cepoch  atomic.Uint64
	rwmu    sync.Mutex
	rwprep  *rewrite.Rewriter
	rwepoch uint64
	tiers   *cqaplan.Cache
	tierRewrite, tierHybrid,
	tierProver, tierFallback atomic.Int64

	// store is the WAL/checkpoint store of a durable system (nil when
	// in-memory); ckptMu serializes checkpoints and ckptBytes is the
	// automatic rotation threshold. The automatic checkpointer runs as a
	// background goroutine nudged by the change feed (ckptCh) and stopped
	// by Close (ckptStop/ckptDone); a failed automatic checkpoint parks in
	// ckptFail until TakeCheckpointError collects it. See durable.go.
	store     *wal.Store
	ckptMu    sync.Mutex
	ckptBytes int64
	ckptCh    chan struct{}
	ckptStop  chan struct{}
	ckptDone  chan struct{}
	ckptFail  atomic.Pointer[errBox]

	// The background maintainer (see maintain.go) drains queued DML
	// deltas into the hypergraph off the query path, nudged by the change
	// feed (foldCh) and stopped by Close (foldStop/foldDone). foldOff
	// pauses it (tests and baseline benchmarks). The counters and the
	// parked fold error are atomics: the change-feed callbacks that tick
	// them run under the engine write sequencer and must not take mu.
	foldCh     chan struct{}
	foldStop   chan struct{}
	foldDone   chan struct{}
	foldOff    atomic.Bool
	eagerFolds atomic.Int64
	overflows  atomic.Int64
	maintFail  atomic.Pointer[errBox]
	closeOnce  sync.Once
}

// errBox wraps an error for atomic storage.
type errBox struct{ err error }

// NewSystem creates a Hippo system over db with the given constraints and
// subscribes it to db's change feed. Call Analyze (or let the first query
// trigger it) before querying, and Close when discarding the system while
// the database lives on. The certification plane is unsharded (K = 1);
// use NewSystemShards for component-sharded parallel certification.
func NewSystem(db *engine.DB, cs []constraint.Constraint) *System {
	return NewSystemShards(db, cs, 1)
}

// MaxShards bounds the certification shard count: component ids route as
// id % K, and beyond a small K the per-vertex shard probes outweigh any
// drain parallelism on realistic component size distributions.
const MaxShards = 16

// NewSystemShards is NewSystem with the certification plane partitioned
// into K component shards (clamped to [1, MaxShards]). K = 1 is
// bit-identical to NewSystem.
func NewSystemShards(db *engine.DB, cs []constraint.Constraint, shards int) *System {
	if shards < 1 {
		shards = 1
	}
	if shards > MaxShards {
		shards = MaxShards
	}
	s := &System{
		db:          db,
		constraints: cs,
		shards:      shards,
		pins:        make(map[uint64]int),
		vcache:      verdictcache.New(0),
		tiers:       cqaplan.NewCache(),
		foldCh:      make(chan struct{}, 1),
		foldStop:    make(chan struct{}),
		foldDone:    make(chan struct{}),
	}
	s.stale.Store(true)
	db.AddListener(s)
	go s.maintainLoop()
	return s
}

// Shards returns the certification-plane shard count K.
func (s *System) Shards() int { return s.shards }

// ShardStats reports the live per-shard hypergraph sizes (empty before the
// first analysis).
func (s *System) ShardStats() []conflict.ShardInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.hg == nil {
		return nil
	}
	return s.hg.ShardStats()
}

// Close unsubscribes the system from the database's change feed, stops
// the background maintainer, drops any queued deltas, and — for durable
// systems — stops the automatic checkpointer (letting it take a final
// checkpoint if one is due), detaches the commit log (stopping the
// engine's commit worker), and seals the WAL. An automatic-checkpoint
// failure nobody collected yet is returned here rather than dropped.
// Close is idempotent; the system must not be queried afterwards.
func (s *System) Close() error {
	var err error
	s.closeOnce.Do(func() {
		s.db.RemoveListener(s)
		close(s.foldStop)
		<-s.foldDone
		if s.store != nil {
			if s.ckptStop != nil {
				close(s.ckptStop)
				<-s.ckptDone
			}
			s.db.SetCommitLog(nil)
			err = s.store.Close()
			if cerr := s.TakeCheckpointError(); cerr != nil && err == nil {
				err = cerr
			}
		}
		s.qmu.Lock()
		defer s.qmu.Unlock()
		s.pending = nil
	})
	return err
}

// DB exposes the underlying engine (for loading data and running ordinary
// SQL).
func (s *System) DB() *engine.DB { return s.db }

// Constraints returns a copy of the constraint set.
func (s *System) Constraints() []constraint.Constraint {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]constraint.Constraint, len(s.constraints))
	copy(out, s.constraints)
	return out
}

// AddConstraint validates the constraint against the current catalog and
// registers it, scheduling a full re-detection (incremental probes are
// compiled per constraint set). Validation is eager so a typo'd relation
// or column is reported here, not by a later query — and, on a durable
// system, never reaches the log. Durable systems log the constraint —
// synced — before registering it, so a declaration either survives
// restarts or reports why it will not.
func (s *System) AddConstraint(c constraint.Constraint) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.validateConstraintLocked(c); err != nil {
		return fmt.Errorf("core: invalid constraint %s: %w", c, err)
	}
	if s.store != nil {
		if err := s.store.AppendConstraint(c); err != nil {
			return fmt.Errorf("core: logging constraint %s: %w", c, err)
		}
	}
	s.constraints = append(s.constraints, c)
	s.invalidateLocked()
	// Advance the constraint epoch: the prepared rewriter and every
	// compiled tier plan were built against the old constraint set.
	s.cepoch.Add(1)
	return nil
}

// validateConstraintLocked checks that the constraint lowers to a denial
// under the current catalog and that every atom names an existing table.
// (A denial's condition is validated by compilation at detection time;
// schema changes after registration surface there too.)
func (s *System) validateConstraintLocked(c constraint.Constraint) error {
	d, err := c.Denial(s.db)
	if err != nil {
		return err
	}
	for _, a := range d.Atoms {
		if _, err := s.db.TableSchema(a.Rel); err != nil {
			return err
		}
	}
	return nil
}

// invalidateLocked schedules a full re-detection and marks the published
// view stale. The caller must hold mu: holding it excludes a concurrent
// refreshViewLocked, whose stale.Store(false) could otherwise land after
// our stale.Store(true) and permanently strand needFull behind a "fresh"
// view. (SchemaChanged is the one caller that cannot take mu — see its
// ordering argument.)
func (s *System) invalidateLocked() {
	s.qmu.Lock()
	s.needFull = true
	s.pending = nil
	s.qmu.Unlock()
	s.stale.Store(true)
}

// maxPendingDeltas caps the delta queue. Past it, a bulk load is under
// way and one full re-detection is both cheaper than replaying the queue
// probe by probe and O(1) in queued memory. A variable so overflow tests
// can force the path without queueing 64k deltas.
var maxPendingDeltas = 65536

// DataChanged queues a DML delta for incremental application. It
// implements engine.ChangeListener.
func (s *System) DataChanged(table string, ch storage.Change) {
	s.qmu.Lock()
	if s.analyzed && !s.needFull {
		if len(s.pending) >= maxPendingDeltas {
			s.needFull = true
			s.pending = nil
			s.overflows.Add(1)
		} else {
			s.pending = append(s.pending, conflict.Delta{Table: table, Change: ch})
		}
	}
	s.qmu.Unlock()
	s.stale.Store(true)
	s.nudgeCheckpointer()
	s.nudgeFolder()
}

// DataBatch queues a committed batch's coalesced change feed in one lock
// acquisition. It implements engine.BatchListener: the engine hands whole
// batches here instead of row by row, so a bulk load reaches the next
// drain — and, with K > 1, the parallel fold — as one contiguous run of
// deltas.
func (s *System) DataBatch(changes []storage.TableChange) {
	s.qmu.Lock()
	if s.analyzed && !s.needFull {
		if len(s.pending)+len(changes) > maxPendingDeltas {
			s.needFull = true
			s.pending = nil
			s.overflows.Add(1)
		} else {
			for _, tc := range changes {
				s.pending = append(s.pending, conflict.Delta{Table: tc.Table, Change: tc.Change})
			}
		}
	}
	s.qmu.Unlock()
	s.stale.Store(true)
	s.nudgeCheckpointer()
	s.nudgeFolder()
}

// SchemaChanged schedules a full re-detection: DDL changes the relation
// set the tuple index and compiled probes are built over. It implements
// engine.ChangeListener.
//
// It must NOT take mu: the caller holds the engine write sequencer, and
// a publisher holding mu acquires that sequencer (FreezeWrites) — taking
// mu here would deadlock. The mu-free ordering is still safe: DDL holds
// the sequencer, so this call can only run before a publisher's frozen
// section (the drain then observes needFull) or after it (our
// stale.Store(true) lands after the publisher's stale.Store(false)).
func (s *System) SchemaChanged(string) {
	s.qmu.Lock()
	s.needFull = true
	s.pending = nil
	s.qmu.Unlock()
	s.stale.Store(true)
	// DDL changes the schemas residue predicates are compiled against:
	// advance the constraint epoch so the rewriter and the compiled
	// tier-plan cache rebuild (cepoch is atomic — no mu needed, matching
	// this callback's lock-free contract).
	s.cepoch.Add(1)
	s.nudgeCheckpointer()
}

// Invalidate forces a full re-detection before the next consistent query.
// DML no longer requires it (deltas are maintained automatically); it
// remains for callers that mutate storage behind the engine's back.
func (s *System) Invalidate() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.invalidateLocked()
}

// Analyze runs Conflict Detection and builds the Conflict Hypergraph from
// scratch, discarding any queued deltas (the rescan subsumes them), then
// publishes a fresh query view.
func (s *System) Analyze() (conflict.DetectStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.invalidateLocked()
	if _, err := s.refreshViewLocked(); err != nil {
		return conflict.DetectStats{}, err
	}
	return s.detStats, nil
}

// analyzeFullFrozen runs a full detection. The caller holds mu and the
// engine write freeze, so the scan is a consistent cut.
func (s *System) analyzeFullFrozen() error {
	h, _, st, err := conflict.NewDetector(s.db).Detect(s.constraints)
	if err != nil {
		return err
	}
	// K = 1 adopts the detected graph in place; K > 1 repartitions it by
	// connected component.
	sh := conflict.ShardHypergraph(h, s.shards)
	inc, err := conflict.NewIncrementalDetector(s.db, sh, s.constraints)
	if err != nil {
		return err
	}
	s.hg, s.inc, s.detStats = sh, inc, st
	s.maint.FullRebuilds++
	s.qmu.Lock()
	s.analyzed, s.needFull = true, false
	s.pending = nil
	s.qmu.Unlock()
	return nil
}

// Hypergraph returns the live conflict graph (Analyze must have run). The
// graph is mutated in place by later delta drains; callers that keep it
// across queries running concurrently with DML should use a Snapshot
// instead.
func (s *System) Hypergraph() conflict.Graph {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.hg == nil {
		return nil
	}
	return s.hg
}

// GraphStats summarizes the live hypergraph under the system lock.
func (s *System) GraphStats() conflict.Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.hg == nil {
		return conflict.Stats{}
	}
	return s.hg.Stats()
}

// Maintenance reports accumulated hypergraph-maintenance statistics.
func (s *System) Maintenance() MaintenanceStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	m := s.maint
	m.Cache = s.vcache.Stats()
	m.EagerFolds = s.eagerFolds.Load()
	m.PendingOverflows = s.overflows.Load()
	return m
}

// CacheStats reports the verdict cache's live counters.
func (s *System) CacheStats() verdictcache.Stats { return s.vcache.Stats() }

// Epoch returns the epoch of the most recently published query view (0
// before the first publication).
func (s *System) Epoch() uint64 {
	if v := s.view.Load(); v != nil {
		return v.epoch
	}
	return 0
}

// PendingDeltas returns the number of queued DML deltas not yet folded
// into the hypergraph.
func (s *System) PendingDeltas() int {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	return len(s.pending)
}

// currentView returns a query view to serve from, publishing a fresh one
// if the current publication is stale. The fast path — no queued work —
// is lock-free. When a refresh is already in flight, concurrent queries
// serve the newest published view instead of queueing behind the
// publisher: the served state is still a consistent cut (bounded
// staleness), and the single publisher keeps the view moving forward.
func (s *System) currentView() (*queryView, error) {
	if !s.stale.Load() {
		if v := s.view.Load(); v != nil {
			return v, nil
		}
	}
	if s.mu.TryLock() {
		defer s.mu.Unlock()
		return s.refreshViewLocked()
	}
	if v := s.view.Load(); v != nil {
		return v, nil
	}
	// No view published yet (first analysis in flight): wait for it.
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.refreshViewLocked()
}

// refreshViewLocked brings the analysis up to date and publishes a fresh
// view. The caller holds mu (exclusive). If the published view is already
// fresh (another goroutine got here first) it is returned unchanged.
func (s *System) refreshViewLocked() (*queryView, error) {
	if !s.stale.Load() {
		if v := s.view.Load(); v != nil {
			return v, nil
		}
	}
	// Freeze writers: no write is in flight, every delivered delta is
	// queued, and nothing can change until release. Analysis and the
	// storage snapshot therefore describe the same consistent cut.
	release := s.db.FreezeWrites()
	s.qmu.Lock()
	pending := s.pending
	s.pending = nil
	full := !s.analyzed || s.needFull
	s.qmu.Unlock()
	var (
		err        error
		cacheReset = full
		log        *conflict.ChangeLog
	)
	if full {
		err = s.analyzeFullFrozen()
	} else if len(pending) > 0 {
		hgBefore := s.hg
		hgBefore.BeginChangeLog()
		err = s.applyDeltasFrozen(pending)
		log = hgBefore.TakeChangeLog()
		if s.hg != hgBefore {
			cacheReset = true // probe failure fell back to a full rebuild
		}
	}
	if err != nil {
		release()
		return nil, err
	}
	// Build and publish the whole view inside the frozen section, and
	// only then clear staleness: writers are excluded, so no delta can
	// slip between the drain and the publication, and a reader that
	// observes stale==false is guaranteed to load (at least) this view —
	// which contains every write sequenced before it. That ordering is
	// what makes single-threaded read-your-writes hold.
	snap := s.db.SnapshotFrozen()
	hgSnap := s.hg.Snapshot()
	s.epoch++
	// Carry the verdict cache into the new epoch: a full rebuild discards
	// it wholesale (component identities restart), a delta drain drops
	// exactly the entries whose dependencies the deltas touched.
	if cacheReset {
		s.vcache.Reset(s.epoch)
	} else if log != nil {
		touched := make([]uint64, 0, len(log.Touched))
		for id := range log.Touched {
			touched = append(touched, id)
		}
		s.advanceCacheFrozen(s.cacheInvalidationsFrozen(pending, log), touched)
	} else {
		s.vcache.Advance(s.epoch, nil, nil)
	}
	s.maint.Cache = s.vcache.Stats()
	s.maint.ViewsPublished++
	s.maint.Migrations = s.hg.Migrations()
	s.maint.ShardReclaims = s.hg.Reclamations()
	s.maint.EagerFolds = s.eagerFolds.Load()
	s.maint.PendingOverflows = s.overflows.Load()
	v := &queryView{
		epoch:      s.epoch,
		snap:       snap,
		hg:         hgSnap,
		ti:         conflict.NewSnapshotTupleIndex(snap.Tables()),
		detStats:   s.detStats,
		graphStats: hgSnap.Stats(),
		shards:     s.shards,
	}
	if old := s.view.Load(); old != nil {
		s.retireLocked(old, v)
	}
	v.maint = s.maint
	s.view.Store(v)
	s.stale.Store(false)
	release()
	return v, nil
}

// cacheInvalidationsFrozen derives the dependency atom keys a delta drain
// invalidates: the inserted/deleted tuples themselves (their membership
// status flipped) plus the tuples of every vertex on an added edge (a
// previously conflict-free tuple drawn into a conflict belongs to no
// component id any cache entry could reference). The caller holds mu and
// the engine write freeze, so row lookups read a consistent cut; a vertex
// deleted later in the same batch is skipped — its own delete delta
// already invalidates it.
func (s *System) cacheInvalidationsFrozen(pending []conflict.Delta, log *conflict.ChangeLog) []string {
	atoms := make([]string, 0, len(pending)+len(log.AddedEdgeVerts))
	for _, d := range pending {
		atoms = append(atoms, prover.DepAtomKey(d.Table, d.Change.Tuple))
	}
	for v := range log.AddedEdgeVerts {
		rel, err := s.db.Relation(v.Rel)
		if err != nil {
			continue
		}
		if row, ok := rel.Row(v.Row); ok {
			atoms = append(atoms, prover.DepAtomKey(v.Rel, row))
		}
	}
	return atoms
}

// applyDeltasFrozen folds queued deltas into the hypergraph; a probe
// failure falls back to a full rescan rather than serving wrong answers.
// The caller holds mu and the engine write freeze. With K=1 this is the
// original sequential fold, statement by statement — bit-identical to the
// pre-shard drain. With K>1 the batch goes through the three-phase
// parallel pipeline (read-only probes fan out, routing is sequential,
// per-shard application runs concurrently with no shared locks).
func (s *System) applyDeltasFrozen(pending []conflict.Delta) error {
	before := s.inc.Stats()
	if s.shards > 1 {
		if err := s.inc.FoldBatch(s.hg, pending, runtime.GOMAXPROCS(0)); err != nil {
			return s.analyzeFullFrozen()
		}
	} else {
		for _, d := range pending {
			if err := s.inc.Apply(d); err != nil {
				return s.analyzeFullFrozen()
			}
		}
	}
	s.maint.IncrementalStats.Add(s.inc.Stats().Sub(before))
	return nil
}

// advanceCacheFrozen moves the verdict cache into the epoch being
// published, dropping the entries the drain's invalidation set names. With
// K=1 it is the single Advance call of the pre-shard publisher. With K>1
// the touched component ids are partitioned by owning certification shard
// and invalidated from one worker per shard concurrently (Invalidate is
// concurrent-safe); the atom set rides with shard 0's worker, and the
// epoch is sealed only after every worker finishes, preserving the
// publisher's invariant that no entry with a stale dependency survives
// into the new epoch. The caller holds mu and the engine write freeze.
func (s *System) advanceCacheFrozen(atoms []string, touched []uint64) {
	if s.shards <= 1 {
		s.vcache.Advance(s.epoch, atoms, touched)
		return
	}
	byShard := make([][]uint64, s.shards)
	for _, id := range touched {
		sh := s.hg.ShardOfComponent(id)
		byShard[sh] = append(byShard[sh], id)
	}
	var wg sync.WaitGroup
	for i := 0; i < s.shards; i++ {
		var a []string
		if i == 0 {
			a = atoms
		}
		if len(a) == 0 && len(byShard[i]) == 0 {
			continue
		}
		wg.Add(1)
		go func(atoms []string, comps []uint64) {
			defer wg.Done()
			s.vcache.Invalidate(atoms, comps)
		}(a, byShard[i])
	}
	wg.Wait()
	s.vcache.SealEpoch(s.epoch)
}

// retireLocked accounts for a replaced view: reclaimed immediately when
// nothing pins its epoch, otherwise parked until the last unpin. The
// caller holds mu.
func (s *System) retireLocked(old, next *queryView) {
	slabs := old.snap.RetiredSlabs(next.snap)
	s.pmu.Lock()
	defer s.pmu.Unlock()
	if s.pins[old.epoch] > 0 {
		s.retired = append(s.retired, retiredView{v: old, slabs: slabs})
		return
	}
	s.maint.ViewsReclaimed++
	s.maint.SlabsReclaimed += int64(slabs)
}

// sweepRetired drops parked views whose epoch is no longer pinned. The
// caller holds mu and pmu.
func (s *System) sweepRetiredLocked() {
	keep := s.retired[:0]
	for _, r := range s.retired {
		if s.pins[r.v.epoch] > 0 {
			keep = append(keep, r)
			continue
		}
		s.maint.ViewsReclaimed++
		s.maint.SlabsReclaimed += int64(r.slabs)
	}
	s.retired = keep
}

// Snapshot pins the current query view, refreshing it first if stale. The
// returned snapshot serves any number of consistent queries and plain
// SELECTs from one immutable database state; Close releases the pin so
// epoch reclamation can drop the view's retired slabs.
func (s *System) Snapshot() (*Snapshot, error) {
	if _, err := s.currentView(); err != nil {
		return nil, err
	}
	// Re-load and pin under the shared lock: retirement happens under the
	// exclusive lock, so the view loaded here cannot be retired before
	// its pin is recorded (pinning after a plain load could race with a
	// publisher counting the view as reclaimed).
	s.mu.RLock()
	defer s.mu.RUnlock()
	v := s.view.Load()
	s.pmu.Lock()
	s.pins[v.epoch]++
	s.pmu.Unlock()
	return &Snapshot{sys: s, v: v}, nil
}

// Snapshot is a pinned query view: a consistent database state plus the
// conflict analysis matching it exactly. It is safe for concurrent use.
type Snapshot struct {
	sys  *System
	v    *queryView
	once sync.Once
}

// Epoch identifies the pinned view.
func (sn *Snapshot) Epoch() uint64 { return sn.v.epoch }

// Query evaluates a plain SELECT against the pinned state (ignoring
// inconsistency).
func (sn *Snapshot) Query(sql string) (*engine.Result, error) {
	return sn.v.snap.Query(sql)
}

// Data exposes the underlying engine snapshot.
func (sn *Snapshot) Data() *engine.Snapshot { return sn.v.snap }

// Close releases the pin. It is idempotent; the snapshot must not be used
// afterwards.
func (sn *Snapshot) Close() {
	sn.once.Do(func() {
		s := sn.sys
		s.mu.Lock()
		defer s.mu.Unlock()
		s.pmu.Lock()
		defer s.pmu.Unlock()
		if n := s.pins[sn.v.epoch]; n > 1 {
			s.pins[sn.v.epoch] = n - 1
		} else {
			delete(s.pins, sn.v.epoch)
			s.sweepRetiredLocked()
		}
	})
}

// ConsistentQueryAt computes consistent answers against a pinned
// snapshot: repeated calls observe the same database state regardless of
// concurrent writers.
func (s *System) ConsistentQueryAt(sn *Snapshot, sql string, opts Options) (*engine.Result, *Stats, error) {
	return s.ConsistentQueryAtContext(context.Background(), sn, sql, opts)
}

// ConsistentQueryAtContext is ConsistentQueryAt under ctx (see
// ConsistentQueryContext for the cancellation contract).
func (s *System) ConsistentQueryAtContext(ctx context.Context, sn *Snapshot, sql string, opts Options) (*engine.Result, *Stats, error) {
	q, err := sqlparse.ParseQuery(sql)
	if err != nil {
		return nil, nil, err
	}
	plan, err := sn.v.snap.PlanQuery(q)
	if err != nil {
		return nil, nil, err
	}
	// The plan is already bound to the pinned snapshot — no rebind.
	return s.runQueryViewBound(ctx, sn.v, plan, opts)
}

// ConsistentQuery computes the consistent answers to an SJUD SQL query.
func (s *System) ConsistentQuery(sql string, opts Options) (*engine.Result, *Stats, error) {
	return s.ConsistentQueryContext(context.Background(), sql, opts)
}

// ConsistentQueryContext is ConsistentQuery honoring ctx: cancellation or
// an expired deadline aborts the run — envelope evaluation stops within a
// bounded number of rows and certification workers stop between
// candidates — on both the streaming pipeline and the materialized
// baseline, returning the context's error.
func (s *System) ConsistentQueryContext(ctx context.Context, sql string, opts Options) (*engine.Result, *Stats, error) {
	q, err := sqlparse.ParseQuery(sql)
	if err != nil {
		return nil, nil, err
	}
	plan, err := s.db.PlanQuery(q)
	if err != nil {
		return nil, nil, err
	}
	return s.ConsistentQueryPlanContext(ctx, plan, opts)
}

// ConsistentQueryPlan computes consistent answers for an already-planned
// query. A top-level ORDER BY / LIMIT decorates the certified answer set:
// the SJUD core is certified first, then ordering and truncation apply to
// the consistent answers (certainty is a property of the set, so this is
// the only coherent reading). The plan's base-relation accesses are
// rebound to the query view's snapshot, so evaluation and certification
// see one consistent cut even while writers are active.
func (s *System) ConsistentQueryPlan(plan ra.Node, opts Options) (*engine.Result, *Stats, error) {
	return s.ConsistentQueryPlanContext(context.Background(), plan, opts)
}

// ConsistentQueryPlanContext is ConsistentQueryPlan under ctx (see
// ConsistentQueryContext).
func (s *System) ConsistentQueryPlanContext(ctx context.Context, plan ra.Node, opts Options) (*engine.Result, *Stats, error) {
	if opts.Serialized {
		s.mu.Lock()
		v, err := s.refreshViewLocked()
		s.mu.Unlock()
		if err != nil {
			return nil, nil, err
		}
		s.mu.RLock()
		defer s.mu.RUnlock()
		return s.runQueryView(ctx, v, plan, opts)
	}
	v, err := s.currentView()
	if err != nil {
		return nil, nil, err
	}
	return s.runQueryView(ctx, v, plan, opts)
}

// runQueryView rebinds the plan's base-relation accesses onto the view's
// snapshot, then executes it.
func (s *System) runQueryView(ctx context.Context, v *queryView, plan ra.Node, opts Options) (*engine.Result, *Stats, error) {
	plan, err := engine.Rebind(plan, v.snap)
	if err != nil {
		return nil, nil, err
	}
	return s.runQueryViewBound(ctx, v, plan, opts)
}

// runQueryViewBound executes the envelope/evaluate/certify pipeline
// against an immutable query view; the plan must already be bound to the
// view's snapshot. It takes no locks.
func (s *System) runQueryViewBound(ctx context.Context, v *queryView, plan ra.Node, opts Options) (*engine.Result, *Stats, error) {
	// Peel trailing Sort/Limit decorators (outermost first).
	var decorators []func(ra.Node) ra.Node
	for {
		switch p := plan.(type) {
		case *ra.Sort:
			keys := p.Keys
			decorators = append(decorators, func(n ra.Node) ra.Node { return &ra.Sort{Child: n, Keys: keys} })
			plan = p.Child
			continue
		case *ra.Limit:
			nLim := p.N
			decorators = append(decorators, func(n ra.Node) ra.Node { return &ra.Limit{Child: n, N: nLim} })
			plan = p.Child
			continue
		}
		break
	}
	start := time.Now()
	stats := &Stats{
		ProverMode:  opts.Mode,
		DetectStats: v.detStats,
		GraphStats:  v.graphStats,
		Maintenance: v.maint,
		Epoch:       v.epoch,
		Shards:      v.shards,
		QueryPlan:   ra.Format(plan),
	}
	queriesBefore := s.db.QueryCount()

	// Tier classification: eligible queries run a compiled first-order
	// plan (rewrite tier, zero certification) or a residue-prefiltered
	// envelope (hybrid tier); everything else takes the prover tier.
	tc0 := time.Now()
	dec := s.tierDecision(plan, stats.QueryPlan, opts)
	stats.Classify = time.Since(tc0)
	stats.Strategy = dec.Tier.String()
	stats.TierReasons = dec.ReasonStrings()
	if opts.Tier == TierRequireRewrite && dec.Tier != cqaplan.TierRewrite {
		return nil, nil, fmt.Errorf("%w: %s", ErrRewriteIneligible, strings.Join(stats.TierReasons, "; "))
	}

	var answers *engine.Result
	if dec.Tier == cqaplan.TierRewrite {
		res, rerr := s.answerRewrite(ctx, v, dec, stats)
		switch {
		case rerr == nil:
			answers = res
		case isCtxErr(ctx, rerr):
			return nil, nil, rerr
		default:
			// A compiled plan failing at run time must never surface to
			// the client: fall back to the prover tier silently.
			stats.TierFallback = true
			stats.Strategy = cqaplan.TierProver.String()
		}
	}

	if answers == nil {
		// Enveloping.
		t0 := time.Now()
		env, err := envelope.Envelope(plan)
		if err != nil {
			return nil, nil, err
		}
		if dec.Tier == cqaplan.TierHybrid && !stats.TierFallback && dec.Plan != nil {
			// Hybrid tier: residues subtract candidates whose witness has
			// a binary-violation partner — such tuples are absent from
			// some repair, so discarding them before certification is
			// sound and shrinks the prover's workload.
			if pre, rerr := engine.Rebind(dec.Plan, v.snap); rerr == nil {
				env = pre
			} else {
				stats.TierFallback = true
				stats.Strategy = cqaplan.TierProver.String()
			}
		}
		stats.EnvelopePlan = ra.Format(env)
		stats.Envelope = time.Since(t0)

		// Evaluation + Prover. The default path streams envelope rows
		// straight into the certification workers, so evaluation and
		// proving overlap; opts.Materialized keeps the legacy
		// evaluate-then-certify pipeline.
		if opts.Materialized {
			answers, err = s.certifyMaterialized(ctx, v, plan, env, opts, stats)
		} else {
			answers, err = s.certifyStreaming(ctx, v, plan, env, opts, stats)
		}
		if err != nil {
			return nil, nil, err
		}
	}
	stats.Answers = len(answers.Rows)
	s.noteTier(stats)

	// Re-apply ORDER BY / LIMIT to the certified answers (innermost
	// decorator first, i.e. reverse peel order).
	if len(decorators) > 0 {
		node := ra.Node(&ra.Values{Sch: answers.Schema, Rows: answers.Rows})
		for i := len(decorators) - 1; i >= 0; i-- {
			node = decorators[i](node)
		}
		rows, err := ra.Materialize(ctx, node)
		if err != nil {
			return nil, nil, err
		}
		answers = &engine.Result{Schema: node.Schema(), Rows: rows}
	}
	stats.EngineQuery = s.db.QueryCount() - queriesBefore
	stats.Total = time.Since(start)
	return answers, stats, nil
}

// certConfig is the certification setup shared by the streaming and
// materialized paths: the membership backend and the verdict-cache wiring.
type certConfig struct {
	member      prover.Membership
	useCache    bool
	querySig    string
	compResolve verdictcache.ComponentResolver
}

func (s *System) certConfig(v *queryView, opts Options, stats *Stats) certConfig {
	cfg := certConfig{}
	if opts.Mode == ProverNaive {
		cfg.member = prover.NaiveMembership{DB: v.snap, TI: v.ti}
	} else {
		cfg.member = prover.IndexedMembership{TI: v.ti}
	}
	// Verdicts hit the cache first (default mode only: ablation and
	// baseline modes must measure real work), and misses are certified
	// with dependency tracking and stored for later views.
	cfg.useCache = opts.Mode == ProverIndexed && !opts.DisablePruning &&
		!opts.Serialized && !opts.DisableVerdictCache && !opts.GlobalCertification
	if cfg.useCache {
		cfg.querySig = verdictcache.QuerySignature(stats.QueryPlan)
		cfg.compResolve = v.hg.Graph().Component
	}
	return cfg
}

// newProver builds one certification worker's prover.
func (s *System) newProver(v *queryView, cfg certConfig, opts Options, compPool chan struct{}) *prover.Prover {
	p := prover.New(v.hg.Graph(), cfg.member)
	p.DisablePruning = opts.DisablePruning
	p.DisableComponents = opts.GlobalCertification
	p.Pool = compPool
	return p
}

// certifyOne decides one candidate: verdict cache first when enabled,
// full certification otherwise.
func (s *System) certifyOne(p *prover.Prover, cfg certConfig, v *queryView, plan ra.Node, row value.Tuple, hits, misses *atomic.Int64) (bool, error) {
	if cfg.useCache {
		key := verdictcache.Key(cfg.querySig, row.Key())
		if verdict, ok := s.vcache.Lookup(key, v.epoch, cfg.compResolve); ok {
			hits.Add(1)
			return verdict, nil
		}
		misses.Add(1)
		ok, deps, err := p.CertifyAnswer(plan, row)
		if err != nil {
			return false, err
		}
		s.vcache.Store(key, v.epoch, ok, deps.Atoms, deps.Comps)
		return ok, nil
	}
	return p.IsConsistentAnswer(plan, row)
}

// certifyMaterialized is the legacy evaluate-then-certify pipeline: the
// envelope is fully materialized (with access-path selection only — the
// pre-planner evaluation strategy), then certification fans out over the
// candidate slice. Kept as the opt-out baseline of the E15 experiment.
// The caller's ctx aborts both stages: the envelope scan dies inside
// Materialize, and certification workers stop between candidates.
func (s *System) certifyMaterialized(ctx context.Context, v *queryView, plan, env ra.Node, opts Options, stats *Stats) (*engine.Result, error) {
	t0 := time.Now()
	candidates, err := v.snap.RunPlanLegacyContext(ctx, env)
	if err != nil {
		return nil, err
	}
	stats.Evaluation = time.Since(t0)
	stats.Candidates = len(candidates.Rows)
	stats.PeakIntermediate = int64(len(candidates.Rows))

	// Prover: keep candidates that hold in every repair. Each membership
	// check is independent, so certification fans out over a bounded pool
	// of workers (one prover each — the view's hypergraph and tuple index
	// are immutable) and results are collected by candidate position, so
	// the answer order matches the sequential run exactly.
	t0 = time.Now()
	cfg := s.certConfig(v, opts, stats)
	poolSize := runtime.GOMAXPROCS(0)
	workers := poolSize
	if workers > len(candidates.Rows) {
		workers = len(candidates.Rows)
	}
	if workers < 1 {
		workers = 1
	}
	// Pool capacity not consumed by per-candidate workers fans a single
	// candidate's independent components out in parallel instead.
	var compPool chan struct{}
	if spare := poolSize - workers; spare > 0 {
		compPool = make(chan struct{}, spare)
	}
	stats.Workers = workers
	keep := make([]bool, len(candidates.Rows))
	provers := make([]*prover.Prover, workers)
	errs := make([]error, workers)
	var next, cacheHits, cacheMisses atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		p := s.newProver(v, cfg, opts, compPool)
		provers[w] = p
		wg.Add(1)
		go func(w int, p *prover.Prover) {
			defer wg.Done()
			for !failed.Load() {
				if err := ctx.Err(); err != nil {
					errs[w] = err
					failed.Store(true)
					return
				}
				i := int(next.Add(1)) - 1
				if i >= len(candidates.Rows) {
					return
				}
				ok, err := s.certifyOne(p, cfg, v, plan, candidates.Rows[i], &cacheHits, &cacheMisses)
				if err != nil {
					errs[w] = err
					failed.Store(true)
					return
				}
				keep[i] = ok
			}
		}(w, p)
	}
	wg.Wait()
	stats.CacheHits = cacheHits.Load()
	stats.CacheMisses = cacheMisses.Load()
	if err := firstCertErr(nil, errs); err != nil {
		return nil, err
	}
	answers := &engine.Result{Schema: plan.Schema()}
	for i, cand := range candidates.Rows {
		if keep[i] {
			answers.Rows = append(answers.Rows, cand)
		}
	}
	stats.ProverTime = time.Since(t0)
	for _, p := range provers {
		stats.ProverStats.Add(p.Stats)
	}
	return answers, nil
}

// firstCertErr selects the error a certification run reports, from the
// evaluation error plus the per-worker errors. A non-cancellation failure
// wins: a worker error cancels the shared context, so cancellation echoes
// from the other workers may coexist with the root cause. When only the
// caller's own cancellation fired, that context error is what comes back.
func firstCertErr(evalErr error, errs []error) error {
	var first error
	for _, err := range append([]error{evalErr}, errs...) {
		if err == nil {
			continue
		}
		if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		if first == nil {
			first = err
		}
	}
	return first
}

// candItem is one candidate flowing through the streaming pipeline. The
// producer allocates it, exactly one worker writes keep, and the producer
// goroutine reads it after the workers are joined.
type candItem struct {
	row  value.Tuple
	keep bool
}

// certifyStreaming evaluates the envelope through the cost-based planner
// as a pull iterator and certifies candidates as they are produced: the
// envelope evaluation and the prover overlap instead of running in
// sequence, and the candidate set is never the only thing the run holds
// materialized. Worker errors cancel the iterator tree via context, and
// the pipeline's context descends from the caller's, so an outside
// deadline or cancellation kills evaluation and certification together;
// answers keep candidate production order, matching the sequential run.
func (s *System) certifyStreaming(ctx context.Context, v *queryView, plan, env ra.Node, opts Options, stats *Stats) (*engine.Result, error) {
	t0 := time.Now()
	cfg := s.certConfig(v, opts, stats)
	phys := engine.Optimize(env)
	stats.JoinOrder = planLeafOrder(phys)
	stats.Streamed = true

	es := &ra.ExecStats{}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ctx = ra.WithExecStats(ctx, es)

	workers := runtime.GOMAXPROCS(0)
	if workers < 1 {
		workers = 1
	}
	stats.Workers = workers
	queue := make(chan *candItem, workers*4)
	provers := make([]*prover.Prover, workers)
	errs := make([]error, workers)
	var cacheHits, cacheMisses atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		p := s.newProver(v, cfg, opts, nil)
		provers[w] = p
		wg.Add(1)
		go func(w int, p *prover.Prover) {
			defer wg.Done()
			for item := range queue {
				if failed.Load() {
					continue // drain so the producer never blocks
				}
				if err := ctx.Err(); err != nil {
					errs[w] = err
					failed.Store(true)
					continue
				}
				ok, err := s.certifyOne(p, cfg, v, plan, item.row, &cacheHits, &cacheMisses)
				if err != nil {
					errs[w] = err
					failed.Store(true)
					cancel()
					continue
				}
				item.keep = ok
			}
		}(w, p)
	}

	it, err := v.snap.OpenPlan(ctx, phys)
	var items []*candItem
	var evalErr error
	if err != nil {
		evalErr = err
	} else {
		for !failed.Load() {
			row, ok, err := it.Next()
			if err != nil {
				evalErr = err
				break
			}
			if !ok {
				break
			}
			item := &candItem{row: row}
			items = append(items, item)
			queue <- item
		}
		if cerr := it.Close(); cerr != nil && evalErr == nil {
			evalErr = cerr
		}
	}
	close(queue)
	wg.Wait()

	stats.CacheHits = cacheHits.Load()
	stats.CacheMisses = cacheMisses.Load()
	stats.Candidates = len(items)
	stats.PeakIntermediate = es.PeakIntermediate()
	if err := firstCertErr(evalErr, errs); err != nil {
		return nil, err
	}
	answers := &engine.Result{Schema: plan.Schema()}
	for _, item := range items {
		if item.keep {
			answers.Rows = append(answers.Rows, item.row)
		}
	}
	// Evaluation and proving overlap in this path; both report the
	// pipeline's wall time.
	stats.Evaluation = time.Since(t0)
	stats.ProverTime = stats.Evaluation
	for _, p := range provers {
		stats.ProverStats.Add(p.Stats)
	}
	return answers, nil
}

// planLeafOrder renders the planner-chosen access order of a physical
// plan: the base relations left to right, as they land in the executed
// join tree.
func planLeafOrder(phys ra.Node) string {
	var names []string
	ra.Walk(phys, func(n ra.Node) {
		switch t := n.(type) {
		case *ra.Scan:
			names = append(names, t.Table.Name())
		case *ra.IndexLookup:
			names = append(names, t.Table.Name()+"[idx]")
		}
	})
	return strings.Join(names, ",")
}

// Rewriter returns the query-rewriting baseline prepared for this
// system's constraints (erroring if they are outside its class). The
// rewriter is cached per constraint epoch — registering a constraint or
// running DDL triggers a rebuild, not each call.
func (s *System) Rewriter() (*rewrite.Rewriter, error) {
	rw := s.preparedRewriter(s.cepoch.Load())
	if err := rw.Err(); err != nil {
		return nil, err
	}
	return rw, nil
}

// RepairEnumerator returns the exponential repair oracle over the current
// query view (small instances only). The enumerator reads the view's
// immutable storage and hypergraph snapshots directly — no defensive
// clone — so later delta drains cannot race with it.
func (s *System) RepairEnumerator() (*repair.Enumerator, error) {
	v, err := s.currentView()
	if err != nil {
		return nil, err
	}
	return &repair.Enumerator{DB: v.snap, H: v.hg.Graph()}, nil
}

// SupportSummary describes which execution strategies can handle a query,
// powering the expressiveness matrix of experiment E2.
type SupportSummary struct {
	Query   string
	Hippo   error // nil when supported
	Rewrite error // nil when supported
}

// Support probes whether Hippo and the rewriting baseline accept the
// query/constraint combination without executing it.
func (s *System) Support(sql string) (SupportSummary, error) {
	out := SupportSummary{Query: sql}
	q, err := sqlparse.ParseQuery(sql)
	if err != nil {
		return out, err
	}
	plan, err := s.db.PlanQuery(q)
	if err != nil {
		return out, err
	}
	out.Hippo = envelope.CheckQuery(plan)
	rw := s.preparedRewriter(s.cepoch.Load())
	if err := rw.Err(); err != nil {
		out.Rewrite = err
	} else if _, err := rw.Rewrite(plan); err != nil {
		out.Rewrite = err
	}
	return out, nil
}

// FormatStats renders a run's statistics as a compact multi-line report.
func FormatStats(st *Stats) string {
	eval := "streamed"
	if !st.Streamed {
		eval = "materialized"
	}
	order := st.JoinOrder
	if order == "" {
		order = "-"
	}
	reasons := strings.Join(st.TierReasons, "; ")
	if reasons == "" {
		reasons = "-"
	}
	return fmt.Sprintf(
		"tier=%s classify=%v fallback=%v reasons=%s\n"+
			"tier-totals: rewrite=%d hybrid=%d prover=%d fallbacks=%d\n"+
			"mode=%s candidates=%d answers=%d workers=%d shards=%d epoch=%d\n"+
			"planner: eval=%s join-order=%s peak-intermediate-rows=%d\n"+
			"envelope=%v evaluation=%v prover=%v total=%v\n"+
			"membership-checks=%d disjuncts=%d blocker-choices=%d engine-queries=%d\n"+
			"hypergraph: edges=%d conflicting-tuples=%d max-degree=%d components=%d max-component=%d\n"+
			"verdict-cache: hits=%d misses=%d entries=%d invalidated=%d\n"+
			"maintenance: deltas=%d edges+%d edges-%d full-rebuilds=%d migrations=%d shard-reclaims=%d eager-folds=%d overflows=%d\n"+
			"snapshots: published=%d reclaimed=%d slabs-reclaimed=%d",
		st.Strategy, st.Classify, st.TierFallback, reasons,
		st.Tiers.Rewrite, st.Tiers.Hybrid, st.Tiers.Prover, st.Tiers.Fallbacks,
		st.ProverMode, st.Candidates, st.Answers, st.Workers, st.Shards, st.Epoch,
		eval, order, st.PeakIntermediate,
		st.Envelope, st.Evaluation, st.ProverTime, st.Total,
		st.ProverStats.MembershipChecks, st.ProverStats.Disjuncts,
		st.ProverStats.BlockerChoices, st.EngineQuery,
		st.GraphStats.Edges, st.GraphStats.ConflictingVertices, st.GraphStats.MaxDegree,
		st.GraphStats.Components, st.GraphStats.MaxComponent,
		st.CacheHits, st.CacheMisses,
		st.Maintenance.Cache.Entries, st.Maintenance.Cache.Invalidated,
		st.Maintenance.DeltasApplied, st.Maintenance.EdgesAdded,
		st.Maintenance.EdgesRemoved, st.Maintenance.FullRebuilds,
		st.Maintenance.Migrations, st.Maintenance.ShardReclaims,
		st.Maintenance.EagerFolds, st.Maintenance.PendingOverflows,
		st.Maintenance.ViewsPublished, st.Maintenance.ViewsReclaimed,
		st.Maintenance.SlabsReclaimed)
}
