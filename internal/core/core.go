// Package core implements the Hippo system pipeline from Figure 1 of the
// paper:
//
//	IC + DB ──► Conflict Detection ──► Conflict Hypergraph
//	Query ──► Enveloping ──► Candidates ──► Evaluation (RDBMS)
//	Candidates + Hypergraph ──► Prover ──► Answer Set
//
// A System wraps a database and a constraint set; Analyze runs conflict
// detection once, and ConsistentQuery computes the consistent answers to
// an SJUD query without materializing repairs.
package core

import (
	"fmt"
	"time"

	"hippo/internal/conflict"
	"hippo/internal/constraint"
	"hippo/internal/engine"
	"hippo/internal/envelope"
	"hippo/internal/prover"
	"hippo/internal/ra"
	"hippo/internal/repair"
	"hippo/internal/rewrite"
	"hippo/internal/sqlparse"
)

// ProverMode selects how the Prover answers membership checks.
type ProverMode int

const (
	// ProverIndexed answers membership checks from in-memory full-row
	// indexes — the paper's optimized variant that issues no database
	// queries per check.
	ProverIndexed ProverMode = iota
	// ProverNaive issues one engine query per membership check — the
	// paper's base version, kept for the E6 optimization experiment.
	ProverNaive
)

// String names the mode.
func (m ProverMode) String() string {
	if m == ProverNaive {
		return "naive"
	}
	return "indexed"
}

// Options tune a consistent-query run.
type Options struct {
	Mode ProverMode
	// DisablePruning turns off early independence pruning in the prover
	// (ablation).
	DisablePruning bool
}

// Stats reports one ConsistentQuery run, stage by stage (mirroring the
// paper's Figure 1 components).
type Stats struct {
	Envelope     time.Duration // Enveloping: plan validation + rewrite
	Evaluation   time.Duration // Evaluation of the envelope by the engine
	ProverTime   time.Duration // Prover over all candidates
	Total        time.Duration
	Candidates   int // tuples produced by the envelope
	Answers      int // consistent answers
	ProverStats  prover.Stats
	EngineQuery  int64 // engine queries issued during the run
	DetectStats  conflict.DetectStats
	GraphStats   conflict.Stats
	ProverMode   ProverMode
	QueryPlan    string // formatted input plan
	EnvelopePlan string // formatted envelope plan
}

// System is a Hippo instance: a database, its integrity constraints, and
// the conflict hypergraph computed from them.
type System struct {
	db          *engine.DB
	constraints []constraint.Constraint

	hg       *conflict.Hypergraph
	ti       *conflict.TupleIndex
	detStats conflict.DetectStats
	analyzed bool
}

// NewSystem creates a Hippo system over db with the given constraints.
// Call Analyze (or let the first query trigger it) before querying.
func NewSystem(db *engine.DB, cs []constraint.Constraint) *System {
	return &System{db: db, constraints: cs}
}

// DB exposes the underlying engine (for loading data and running ordinary
// SQL).
func (s *System) DB() *engine.DB { return s.db }

// Constraints returns the constraint set.
func (s *System) Constraints() []constraint.Constraint { return s.constraints }

// AddConstraint registers another constraint and invalidates the analysis.
func (s *System) AddConstraint(c constraint.Constraint) {
	s.constraints = append(s.constraints, c)
	s.analyzed = false
}

// Invalidate marks the conflict analysis stale (call after data changes).
func (s *System) Invalidate() { s.analyzed = false }

// Analyze runs Conflict Detection and builds the Conflict Hypergraph.
func (s *System) Analyze() (conflict.DetectStats, error) {
	h, ti, st, err := conflict.NewDetector(s.db).Detect(s.constraints)
	if err != nil {
		return st, err
	}
	s.hg, s.ti, s.detStats = h, ti, st
	s.analyzed = true
	return st, nil
}

// Hypergraph returns the conflict hypergraph (Analyze must have run).
func (s *System) Hypergraph() *conflict.Hypergraph { return s.hg }

func (s *System) ensureAnalyzed() error {
	if s.analyzed {
		return nil
	}
	_, err := s.Analyze()
	return err
}

// ConsistentQuery computes the consistent answers to an SJUD SQL query.
func (s *System) ConsistentQuery(sql string, opts Options) (*engine.Result, *Stats, error) {
	q, err := sqlparse.ParseQuery(sql)
	if err != nil {
		return nil, nil, err
	}
	plan, err := s.db.PlanQuery(q)
	if err != nil {
		return nil, nil, err
	}
	return s.ConsistentQueryPlan(plan, opts)
}

// ConsistentQueryPlan computes consistent answers for an already-planned
// query. A top-level ORDER BY / LIMIT decorates the certified answer set:
// the SJUD core is certified first, then ordering and truncation apply to
// the consistent answers (certainty is a property of the set, so this is
// the only coherent reading).
func (s *System) ConsistentQueryPlan(plan ra.Node, opts Options) (*engine.Result, *Stats, error) {
	if err := s.ensureAnalyzed(); err != nil {
		return nil, nil, err
	}
	// Peel trailing Sort/Limit decorators (outermost first).
	var decorators []func(ra.Node) ra.Node
	for {
		switch p := plan.(type) {
		case *ra.Sort:
			keys := p.Keys
			decorators = append(decorators, func(n ra.Node) ra.Node { return &ra.Sort{Child: n, Keys: keys} })
			plan = p.Child
			continue
		case *ra.Limit:
			nLim := p.N
			decorators = append(decorators, func(n ra.Node) ra.Node { return &ra.Limit{Child: n, N: nLim} })
			plan = p.Child
			continue
		}
		break
	}
	start := time.Now()
	stats := &Stats{
		ProverMode:  opts.Mode,
		DetectStats: s.detStats,
		GraphStats:  s.hg.Stats(),
		QueryPlan:   ra.Format(plan),
	}
	queriesBefore := s.db.QueryCount()

	// Enveloping.
	t0 := time.Now()
	env, err := envelope.Envelope(plan)
	if err != nil {
		return nil, nil, err
	}
	stats.EnvelopePlan = ra.Format(env)
	stats.Envelope = time.Since(t0)

	// Evaluation of the envelope by the engine.
	t0 = time.Now()
	candidates, err := s.db.RunPlan(env)
	if err != nil {
		return nil, nil, err
	}
	stats.Evaluation = time.Since(t0)
	stats.Candidates = len(candidates.Rows)

	// Prover: keep candidates that hold in every repair.
	t0 = time.Now()
	var member prover.Membership
	if opts.Mode == ProverNaive {
		member = prover.NaiveMembership{DB: s.db, TI: s.ti}
	} else {
		member = prover.IndexedMembership{TI: s.ti}
	}
	p := prover.New(s.hg, member)
	p.DisablePruning = opts.DisablePruning
	answers := &engine.Result{Schema: plan.Schema()}
	for _, cand := range candidates.Rows {
		ok, err := p.IsConsistentAnswer(plan, cand)
		if err != nil {
			return nil, nil, err
		}
		if ok {
			answers.Rows = append(answers.Rows, cand)
		}
	}
	stats.ProverTime = time.Since(t0)
	stats.ProverStats = p.Stats
	stats.Answers = len(answers.Rows)

	// Re-apply ORDER BY / LIMIT to the certified answers (innermost
	// decorator first, i.e. reverse peel order).
	if len(decorators) > 0 {
		node := ra.Node(&ra.Values{Sch: answers.Schema, Rows: answers.Rows})
		for i := len(decorators) - 1; i >= 0; i-- {
			node = decorators[i](node)
		}
		rows, err := ra.Materialize(node)
		if err != nil {
			return nil, nil, err
		}
		answers = &engine.Result{Schema: node.Schema(), Rows: rows}
	}
	stats.EngineQuery = s.db.QueryCount() - queriesBefore
	stats.Total = time.Since(start)
	return answers, stats, nil
}

// Rewriter returns the query-rewriting baseline prepared for this
// system's constraints (erroring if they are outside its class).
func (s *System) Rewriter() (*rewrite.Rewriter, error) {
	return rewrite.New(s.db, s.constraints)
}

// RepairEnumerator returns the exponential repair oracle for this system
// (small instances only).
func (s *System) RepairEnumerator() (*repair.Enumerator, error) {
	if err := s.ensureAnalyzed(); err != nil {
		return nil, err
	}
	return &repair.Enumerator{DB: s.db, H: s.hg}, nil
}

// SupportSummary describes which execution strategies can handle a query,
// powering the expressiveness matrix of experiment E2.
type SupportSummary struct {
	Query   string
	Hippo   error // nil when supported
	Rewrite error // nil when supported
}

// Support probes whether Hippo and the rewriting baseline accept the
// query/constraint combination without executing it.
func (s *System) Support(sql string) (SupportSummary, error) {
	out := SupportSummary{Query: sql}
	q, err := sqlparse.ParseQuery(sql)
	if err != nil {
		return out, err
	}
	plan, err := s.db.PlanQuery(q)
	if err != nil {
		return out, err
	}
	out.Hippo = envelope.CheckQuery(plan)
	rw, err := rewrite.New(s.db, s.constraints)
	if err != nil {
		out.Rewrite = err
	} else if _, err := rw.Rewrite(plan); err != nil {
		out.Rewrite = err
	}
	return out, nil
}

// FormatStats renders a run's statistics as a compact multi-line report.
func FormatStats(st *Stats) string {
	return fmt.Sprintf(
		"mode=%s candidates=%d answers=%d\n"+
			"envelope=%v evaluation=%v prover=%v total=%v\n"+
			"membership-checks=%d disjuncts=%d blocker-choices=%d engine-queries=%d\n"+
			"hypergraph: edges=%d conflicting-tuples=%d max-degree=%d",
		st.ProverMode, st.Candidates, st.Answers,
		st.Envelope, st.Evaluation, st.ProverTime, st.Total,
		st.ProverStats.MembershipChecks, st.ProverStats.Disjuncts,
		st.ProverStats.BlockerChoices, st.EngineQuery,
		st.GraphStats.Edges, st.GraphStats.ConflictingVertices, st.GraphStats.MaxDegree)
}
