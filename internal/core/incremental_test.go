package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"hippo/internal/conflict"
	"hippo/internal/constraint"
	"hippo/internal/engine"
)

// edgeSet canonicalizes a hypergraph's live edges as sorted vertex-set
// strings (labels are excluded: when two constraints produce the same
// vertex set, which label wins depends on discovery order).
func edgeSet(h conflict.Graph) []string {
	edges := h.Edges()
	out := make([]string, len(edges))
	for i, e := range edges {
		out[i] = e.String()
	}
	sort.Strings(out)
	return out
}

func diffStrings(a, b []string) string {
	if len(a) != len(b) {
		return fmt.Sprintf("edge counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Sprintf("edge %d differs: %q vs %q", i, a[i], b[i])
		}
	}
	return ""
}

// TestIncrementalMatchesFullDetect runs a randomized interleaved
// INSERT/DELETE workload and asserts, at every checkpoint, that the
// incrementally maintained hypergraph is edge- and vertex-identical to a
// fresh full Detect over the same data, and that consistent answers
// match a freshly analyzed system — without the incremental system ever
// rescanning (FullRebuilds stays at the initial analysis).
func TestIncrementalMatchesFullDetect(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	db := engine.New()
	mustExec(db, "CREATE TABLE emp (id INT, salary INT, dept INT)")
	mustExec(db, "CREATE TABLE blocked (id INT)")

	excl, err := constraint.ParseDenial("emp AS e, blocked AS b WHERE e.id = b.id")
	if err != nil {
		t.Fatal(err)
	}
	cs := []constraint.Constraint{
		constraint.FD{Rel: "emp", LHS: []string{"id"}, RHS: []string{"salary"}},
		excl,
	}
	sys := NewSystem(db, cs)
	if _, err := sys.Analyze(); err != nil {
		t.Fatal(err)
	}

	// Small value domains force frequent conflict creation and removal.
	const steps, checkEvery = 400, 20
	query := "SELECT * FROM emp WHERE salary >= 1"
	for step := 1; step <= steps; step++ {
		switch rng.Intn(4) {
		case 0, 1:
			mustExec(db, fmt.Sprintf("INSERT INTO emp VALUES (%d, %d, %d)",
				rng.Intn(16), rng.Intn(3), rng.Intn(5)))
		case 2:
			mustExec(db, fmt.Sprintf("INSERT INTO blocked VALUES (%d)", rng.Intn(16)))
		default:
			// Predicate deletes may remove several rows (or none) — each
			// removed row emits its own delta.
			if rng.Intn(2) == 0 {
				mustExec(db, fmt.Sprintf("DELETE FROM emp WHERE id = %d AND salary = %d",
					rng.Intn(16), rng.Intn(3)))
			} else {
				mustExec(db, fmt.Sprintf("DELETE FROM blocked WHERE id = %d", rng.Intn(16)))
			}
		}
		if step%checkEvery != 0 {
			continue
		}

		got, _, err := sys.ConsistentQuery(query, Options{})
		if err != nil {
			t.Fatalf("step %d: incremental query: %v", step, err)
		}
		if n := sys.PendingDeltas(); n != 0 {
			t.Fatalf("step %d: %d deltas left pending after query", step, n)
		}

		// Reference: a full Detect over the same data.
		fresh, _, _, err := conflict.NewDetector(db).Detect(cs)
		if err != nil {
			t.Fatalf("step %d: full detect: %v", step, err)
		}
		if d := diffStrings(edgeSet(sys.Hypergraph()), edgeSet(fresh)); d != "" {
			t.Fatalf("step %d: incremental hypergraph diverged: %s", step, d)
		}
		if a, b := sys.Hypergraph().NumConflictingVertices(), fresh.NumConflictingVertices(); a != b {
			t.Fatalf("step %d: conflicting vertices: incremental=%d full=%d", step, a, b)
		}

		// Reference answers from a freshly analyzed system (closed after
		// use so it stops receiving the change feed).
		ref := NewSystem(db, cs)
		want, _, err := ref.ConsistentQuery(query, Options{})
		ref.Close()
		if err != nil {
			t.Fatalf("step %d: reference query: %v", step, err)
		}
		gotRows, wantRows := rowStrings(got.Rows), rowStrings(want.Rows)
		if d := diffStrings(gotRows, wantRows); d != "" {
			t.Fatalf("step %d: answers diverged: %s", step, d)
		}
	}

	m := sys.Maintenance()
	if m.FullRebuilds != 1 {
		t.Errorf("incremental system ran %d full rebuilds, want 1 (the initial analysis)", m.FullRebuilds)
	}
	if m.DeltasApplied == 0 || m.EdgesAdded == 0 || m.EdgesRemoved == 0 {
		t.Errorf("expected nonzero maintenance activity, got %+v", m)
	}
}

// TestIncrementalDDLForcesRebuild checks that DDL (and constraint
// changes) still fall back to a full re-detection.
func TestIncrementalDDLForcesRebuild(t *testing.T) {
	sys := newSystem(t)
	if _, err := sys.Analyze(); err != nil {
		t.Fatal(err)
	}
	mustExec(sys.DB(), "CREATE TABLE extra (id INT)")
	if _, _, err := sys.ConsistentQuery("SELECT * FROM emp", Options{}); err != nil {
		t.Fatal(err)
	}
	if m := sys.Maintenance(); m.FullRebuilds != 2 {
		t.Errorf("DDL should force a rebuild: got %d rebuilds, want 2", m.FullRebuilds)
	}

	sys.AddConstraint(constraint.FD{Rel: "emp", LHS: []string{"salary"}, RHS: []string{"id"}})
	if _, _, err := sys.ConsistentQuery("SELECT * FROM emp", Options{}); err != nil {
		t.Fatal(err)
	}
	if m := sys.Maintenance(); m.FullRebuilds != 3 {
		t.Errorf("constraint change should force a rebuild: got %d rebuilds, want 3", m.FullRebuilds)
	}
}

// TestIncrementalTransientInsertDelete exercises the queued
// insert-then-delete case: the insert's probe runs against a row already
// tombstoned by the later delete, and the delete's RemoveVertex must
// cancel the transient edges.
func TestIncrementalTransientInsertDelete(t *testing.T) {
	sys := newSystem(t)
	if _, err := sys.Analyze(); err != nil {
		t.Fatal(err)
	}
	edgesBefore := sys.Hypergraph().NumEdges()
	// Conflicts with id=2 (salary 150), then vanishes before any query.
	mustExec(sys.DB(), "INSERT INTO emp VALUES (2, 999)")
	mustExec(sys.DB(), "DELETE FROM emp WHERE salary = 999")
	if _, _, err := sys.ConsistentQuery("SELECT * FROM emp", Options{}); err != nil {
		t.Fatal(err)
	}
	if got := sys.Hypergraph().NumEdges(); got != edgesBefore {
		t.Errorf("transient insert+delete changed edge count: %d -> %d", edgesBefore, got)
	}
	if m := sys.Maintenance(); m.FullRebuilds != 1 {
		t.Errorf("transient DML should not force a rebuild: got %d rebuilds", m.FullRebuilds)
	}
}
