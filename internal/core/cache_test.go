package core

import (
	"testing"

	"hippo/internal/constraint"
	"hippo/internal/engine"
)

// cacheSystem builds r(a,b) with FD a -> b over the given rows, plus an
// empty helper table s(a,b).
func cacheSystem(t *testing.T, rows string) *System {
	t.Helper()
	db := engine.New()
	mustExec(db, "CREATE TABLE r (a INT, b INT)")
	mustExec(db, "CREATE TABLE s (a INT, b INT)")
	if rows != "" {
		mustExec(db, "INSERT INTO r VALUES "+rows)
	}
	fd := constraint.FD{Rel: "r", LHS: []string{"a"}, RHS: []string{"b"}}
	sys := NewSystem(db, []constraint.Constraint{fd})
	if _, err := sys.Analyze(); err != nil {
		t.Fatal(err)
	}
	return sys
}

func mustCQ(t *testing.T, sys *System, sql string, opts Options) (*engine.Result, *Stats) {
	t.Helper()
	res, st, err := sys.ConsistentQuery(sql, opts)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	return res, st
}

func TestVerdictCacheRepeatHits(t *testing.T) {
	sys := cacheSystem(t, "(1,1), (1,2), (2,5)")
	const q = "SELECT * FROM r"
	_, st1 := mustCQ(t, sys, q, Options{Tier: TierForceProver})
	if st1.CacheMisses == 0 || st1.CacheHits != 0 {
		t.Fatalf("first run: hits=%d misses=%d, want cold misses only", st1.CacheHits, st1.CacheMisses)
	}
	res, st2 := mustCQ(t, sys, q, Options{Tier: TierForceProver})
	if st2.CacheMisses != 0 || st2.CacheHits != st1.CacheMisses {
		t.Fatalf("second run: hits=%d misses=%d, want %d pure hits", st2.CacheHits, st2.CacheMisses, st1.CacheMisses)
	}
	if len(res.Rows) != 1 { // only (2,5) survives every repair
		t.Fatalf("answers=%d, want 1", len(res.Rows))
	}
}

// TestVerdictCacheMembershipInvalidation is the pure-membership soundness
// case: an insert into s changes no conflict (s is unconstrained, the
// hypergraph is untouched, every component fingerprint is unchanged), yet
// it must flip a cached difference-query verdict that resolved the
// inserted tuple as absent.
func TestVerdictCacheMembershipInvalidation(t *testing.T) {
	sys := cacheSystem(t, "(2,5)")
	const q = "SELECT * FROM r EXCEPT SELECT * FROM s"
	res, _ := mustCQ(t, sys, q, Options{Tier: TierForceProver})
	if len(res.Rows) != 1 {
		t.Fatalf("before insert: answers=%d, want 1", len(res.Rows))
	}
	mustExec(sys.DB(), "INSERT INTO s VALUES (2,5)")
	res, st := mustCQ(t, sys, q, Options{Tier: TierForceProver})
	if len(res.Rows) != 0 {
		t.Fatalf("after insert into s: answers=%d, want 0 (stale cached verdict served)", len(res.Rows))
	}
	if st.CacheMisses == 0 {
		t.Fatal("the affected candidate was not re-certified")
	}
}

// TestVerdictCacheCleanToConflicting covers the added-edge-vertex path: a
// previously conflict-free tuple is drawn into a conflict by an insert of
// a *different* tuple, so its cached verdict cannot be invalidated by the
// delta's own atom key or by any pre-existing component id.
func TestVerdictCacheCleanToConflicting(t *testing.T) {
	sys := cacheSystem(t, "(1,1), (1,2), (2,5)")
	const q = "SELECT * FROM r"
	res, _ := mustCQ(t, sys, q, Options{Tier: TierForceProver})
	if len(res.Rows) != 1 {
		t.Fatalf("before: answers=%d, want 1", len(res.Rows))
	}
	mustExec(sys.DB(), "INSERT INTO r VALUES (2,6)") // conflicts with (2,5)
	res, _ = mustCQ(t, sys, q, Options{Tier: TierForceProver})
	if len(res.Rows) != 0 {
		t.Fatalf("after conflicting insert: answers=%d, want 0 (stale verdict for (2,5))", len(res.Rows))
	}
}

// TestVerdictCacheComponentInvalidation: deleting one side of a conflict
// touches the component, so the survivor's verdict flips to certified.
func TestVerdictCacheComponentInvalidation(t *testing.T) {
	sys := cacheSystem(t, "(1,1), (1,2)")
	const q = "SELECT * FROM r"
	res, _ := mustCQ(t, sys, q, Options{Tier: TierForceProver})
	if len(res.Rows) != 0 {
		t.Fatalf("before: answers=%d, want 0", len(res.Rows))
	}
	mustExec(sys.DB(), "DELETE FROM r WHERE b = 2")
	res, st := mustCQ(t, sys, q, Options{Tier: TierForceProver})
	if len(res.Rows) != 1 {
		t.Fatalf("after delete: answers=%d, want 1", len(res.Rows))
	}
	if st.Maintenance.Cache.Invalidated == 0 {
		t.Fatal("no cache invalidations recorded")
	}
}

// TestVerdictCacheLocalizedInvalidation: an update in one conflict
// component must not evict verdicts whose dependencies live in others.
func TestVerdictCacheLocalizedInvalidation(t *testing.T) {
	sys := cacheSystem(t, "(1,1), (1,2), (2,5), (2,6), (3,7)")
	const q = "SELECT * FROM r"
	_, st1 := mustCQ(t, sys, q, Options{Tier: TierForceProver})
	cold := st1.CacheMisses
	if cold != 5 {
		t.Fatalf("cold misses=%d, want 5", cold)
	}
	// Touch only the a=1 component.
	mustExec(sys.DB(), "INSERT INTO r VALUES (1,3)")
	_, st2 := mustCQ(t, sys, q, Options{Tier: TierForceProver})
	// New candidate (1,3) plus re-certification of the a=1 pair; (2,5),
	// (2,6), (3,7) must come from the cache.
	if st2.CacheHits != 3 {
		t.Fatalf("hits=%d, want 3 (untouched components re-certified?)", st2.CacheHits)
	}
	if st2.CacheMisses != 3 {
		t.Fatalf("misses=%d, want 3", st2.CacheMisses)
	}
}

// TestVerdictCacheAgreesWithUncached drives a small update stream and
// asserts the cached, uncached, and global-certification paths agree on
// every query.
func TestVerdictCacheAgreesWithUncached(t *testing.T) {
	cached := cacheSystem(t, "(1,1), (1,2), (2,5), (3,7), (3,8)")
	queries := []string{
		"SELECT * FROM r",
		"SELECT * FROM r WHERE b <= 5",
		"SELECT * FROM r EXCEPT SELECT * FROM r WHERE a = 1",
		"SELECT * FROM r WHERE a = 3 UNION SELECT * FROM r WHERE b = 1",
	}
	updates := []string{
		"INSERT INTO r VALUES (2,6)",
		"DELETE FROM r WHERE b = 2",
		"INSERT INTO r VALUES (4,9)",
		"DELETE FROM r WHERE a = 3",
	}
	check := func(stage string) {
		for _, q := range queries {
			want, _ := mustCQ(t, cached, q, Options{DisableVerdictCache: true})
			global, _ := mustCQ(t, cached, q, Options{GlobalCertification: true})
			got, _ := mustCQ(t, cached, q, Options{Tier: TierForceProver})
			if len(got.Rows) != len(want.Rows) || len(global.Rows) != len(want.Rows) {
				t.Fatalf("%s %q: cached=%d uncached=%d global=%d answers",
					stage, q, len(got.Rows), len(want.Rows), len(global.Rows))
			}
		}
	}
	check("initial")
	for _, u := range updates {
		mustExec(cached.DB(), u)
		check(u)
	}
}
