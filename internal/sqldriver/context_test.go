package sqldriver

import (
	"context"
	"database/sql"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

// bigJoinDB registers an engine whose self-join is expensive enough that
// deadline tests abort it mid-flight rather than racing completion.
func bigJoinDB(t *testing.T, name string, n int) *sql.DB {
	t.Helper()
	_, db := openTestDB(t, name)
	if _, err := db.Exec("CREATE TABLE j (id INT, grp INT)"); err != nil {
		t.Fatal(err)
	}
	var rows []string
	for i := 0; i < n; i++ {
		rows = append(rows, fmt.Sprintf("(%d, %d)", i, i%4))
	}
	if _, err := db.Exec("INSERT INTO j VALUES " + strings.Join(rows, ", ")); err != nil {
		t.Fatal(err)
	}
	return db
}

// An already-cancelled context fails before any engine dispatch, on
// every context entry point the driver exposes.
func TestAlreadyCancelledContext(t *testing.T) {
	db := bigJoinDB(t, "ctx1", 10)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := db.QueryContext(ctx, "SELECT * FROM j"); !errors.Is(err, context.Canceled) {
		t.Errorf("QueryContext: err = %v, want context.Canceled", err)
	}
	if _, err := db.ExecContext(ctx, "INSERT INTO j VALUES (99, 0)"); !errors.Is(err, context.Canceled) {
		t.Errorf("ExecContext: err = %v, want context.Canceled", err)
	}
	st, err := db.Prepare("SELECT * FROM j WHERE id = ?")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.QueryContext(ctx, 1); !errors.Is(err, context.Canceled) {
		t.Errorf("StmtQueryContext: err = %v, want context.Canceled", err)
	}
	if _, err := st.ExecContext(ctx, 1); !errors.Is(err, context.Canceled) {
		t.Errorf("StmtExecContext: err = %v, want context.Canceled", err)
	}

	// The cancelled statement dispatched nothing: the table is unchanged.
	var n int64
	rows, err := db.Query("SELECT id FROM j WHERE id = 99")
	if err != nil {
		t.Fatal(err)
	}
	for rows.Next() {
		n++
	}
	rows.Close()
	if n != 0 {
		t.Errorf("cancelled ExecContext inserted %d rows, want 0", n)
	}
}

// A deadline expiring mid-query aborts the engine's row loops: the error
// comes back as context.DeadlineExceeded well before the query would
// have finished, proving the ctx reaches past the driver shim.
func TestQueryContextDeadline(t *testing.T) {
	db := bigJoinDB(t, "ctx2", 4000)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	rows, err := db.QueryContext(ctx, "SELECT * FROM j AS a, j AS b WHERE a.grp = b.grp")
	if err == nil {
		rows.Close()
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(t0); elapsed > time.Second {
		t.Fatalf("deadline enforcement took %v", elapsed)
	}
}

// Named arguments are rejected: the dialect only has ordinal '?'
// placeholders, and silently misbinding them would corrupt queries.
func TestNamedArgsRejected(t *testing.T) {
	db := bigJoinDB(t, "ctx3", 4)
	_, err := db.QueryContext(context.Background(),
		"SELECT * FROM j WHERE id = ?", sql.Named("id", 1))
	if err == nil || !strings.Contains(err.Error(), "named argument") {
		t.Fatalf("err = %v, want named-argument rejection", err)
	}
}
