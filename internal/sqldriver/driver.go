// Package sqldriver exposes the embedded engine through the standard
// database/sql interface, mirroring how the original Hippo system accessed
// its RDBMS backend through JDBC. Engine instances are registered under a
// DSN name and opened with sql.Open("hippo", name).
package sqldriver

import (
	"database/sql"
	"database/sql/driver"
	"fmt"
	"io"
	"sync"

	"hippo/internal/engine"
)

func init() {
	sql.Register("hippo", &Driver{})
}

var (
	regMu    sync.RWMutex
	registry = make(map[string]*engine.DB)
)

// Register makes db reachable as a DSN for sql.Open("hippo", name).
// Registering the same name twice replaces the previous database.
func Register(name string, db *engine.DB) {
	regMu.Lock()
	defer regMu.Unlock()
	registry[name] = db
}

// Unregister removes a previously registered DSN.
func Unregister(name string) {
	regMu.Lock()
	defer regMu.Unlock()
	delete(registry, name)
}

// Driver implements driver.Driver over registered engine instances.
type Driver struct{}

// Open returns a connection to the engine registered under name.
func (d *Driver) Open(name string) (driver.Conn, error) {
	regMu.RLock()
	db, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("sqldriver: no engine registered as %q (call sqldriver.Register first)", name)
	}
	return &conn{db: db}, nil
}

type conn struct{ db *engine.DB }

// Prepare returns a statement. The SQL dialect has no placeholders, so the
// statement is just the deferred text.
func (c *conn) Prepare(query string) (driver.Stmt, error) {
	return &stmt{db: c.db, sql: query}, nil
}

// Close releases the connection (a no-op for the in-process engine).
func (c *conn) Close() error { return nil }

// Begin starts a transaction. The engine is auto-commit only; the returned
// transaction is a no-op wrapper so database/sql helpers keep working.
func (c *conn) Begin() (driver.Tx, error) { return noopTx{}, nil }

type noopTx struct{}

func (noopTx) Commit() error   { return nil }
func (noopTx) Rollback() error { return nil }

type stmt struct {
	db  *engine.DB
	sql string
}

func (s *stmt) Close() error { return nil }

// NumInput reports no placeholder support.
func (s *stmt) NumInput() int { return 0 }

// Exec runs a DDL/DML statement.
func (s *stmt) Exec(args []driver.Value) (driver.Result, error) {
	if len(args) > 0 {
		return nil, fmt.Errorf("sqldriver: placeholders are not supported")
	}
	_, n, err := s.db.Exec(s.sql)
	if err != nil {
		return nil, err
	}
	return result{rows: int64(n)}, nil
}

// Query runs a SELECT statement.
func (s *stmt) Query(args []driver.Value) (driver.Rows, error) {
	if len(args) > 0 {
		return nil, fmt.Errorf("sqldriver: placeholders are not supported")
	}
	res, err := s.db.Query(s.sql)
	if err != nil {
		return nil, err
	}
	return &rows{res: res}, nil
}

type result struct{ rows int64 }

// LastInsertId is not supported by the engine.
func (result) LastInsertId() (int64, error) {
	return 0, fmt.Errorf("sqldriver: LastInsertId is not supported")
}

// RowsAffected returns the number of changed rows.
func (r result) RowsAffected() (int64, error) { return r.rows, nil }

type rows struct {
	res *engine.Result
	pos int
}

// Columns returns the output column names.
func (r *rows) Columns() []string { return r.res.Columns() }

func (r *rows) Close() error { return nil }

// Next copies the next row into dest.
func (r *rows) Next(dest []driver.Value) error {
	if r.pos >= len(r.res.Rows) {
		return io.EOF
	}
	row := r.res.Rows[r.pos]
	r.pos++
	for i, v := range row {
		dest[i] = v.Go()
	}
	return nil
}
