// Package sqldriver exposes the embedded engine through the standard
// database/sql interface, mirroring how the original Hippo system accessed
// its RDBMS backend through JDBC. Engine instances are registered under a
// DSN name and opened with sql.Open("hippo", name).
package sqldriver

import (
	"context"
	"database/sql"
	"database/sql/driver"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"sync"

	"hippo/internal/engine"
	"hippo/internal/value"
)

func init() {
	sql.Register("hippo", &Driver{})
}

var (
	regMu    sync.RWMutex
	registry = make(map[string]*engine.DB)
)

// Register makes db reachable as a DSN for sql.Open("hippo", name).
// Registering the same name twice replaces the previous database.
func Register(name string, db *engine.DB) {
	regMu.Lock()
	defer regMu.Unlock()
	registry[name] = db
}

// Unregister removes a previously registered DSN.
func Unregister(name string) {
	regMu.Lock()
	defer regMu.Unlock()
	delete(registry, name)
}

// Driver implements driver.Driver over registered engine instances.
type Driver struct{}

// Open returns a connection to the engine registered under name.
func (d *Driver) Open(name string) (driver.Conn, error) {
	regMu.RLock()
	db, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("sqldriver: no engine registered as %q (call sqldriver.Register first)", name)
	}
	return &conn{db: db}, nil
}

type conn struct{ db *engine.DB }

// The connection and statement speak the context-aware driver
// interfaces, so database/sql never falls back to its goroutine-based
// cancellation shim: the context reaches the engine's own row loops.
var (
	_ driver.ConnPrepareContext = (*conn)(nil)
	_ driver.ExecerContext      = (*conn)(nil)
	_ driver.QueryerContext     = (*conn)(nil)
	_ driver.StmtExecContext    = (*stmt)(nil)
	_ driver.StmtQueryContext   = (*stmt)(nil)
)

// Prepare returns a statement. '?' placeholders are bound at Exec/Query
// time (the engine dialect has no placeholder token, so binding renders
// literals at this layer).
func (c *conn) Prepare(query string) (driver.Stmt, error) {
	return &stmt{db: c.db, sql: query}, nil
}

// PrepareContext returns a statement. The context covers preparation
// only (which is immediate here), per the driver contract; execution
// contexts arrive through the Stmt*Context methods.
func (c *conn) PrepareContext(ctx context.Context, query string) (driver.Stmt, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return &stmt{db: c.db, sql: query}, nil
}

// ExecContext runs a statement without a prepared-statement round trip,
// honoring ctx: an already-expired context fails before dispatch, and a
// deadline or cancellation aborts the engine's row loops mid-flight.
func (c *conn) ExecContext(ctx context.Context, query string, args []driver.NamedValue) (driver.Result, error) {
	vals, err := ordinalArgs(args)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sql, err := bindPlaceholders(query, vals)
	if err != nil {
		return nil, err
	}
	_, n, err := c.db.ExecContext(ctx, sql)
	if err != nil {
		return nil, err
	}
	return result{rows: int64(n)}, nil
}

// QueryContext runs a SELECT without a prepared-statement round trip,
// honoring ctx like ExecContext.
func (c *conn) QueryContext(ctx context.Context, query string, args []driver.NamedValue) (driver.Rows, error) {
	vals, err := ordinalArgs(args)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sql, err := bindPlaceholders(query, vals)
	if err != nil {
		return nil, err
	}
	res, err := c.db.QueryContext(ctx, sql)
	if err != nil {
		return nil, err
	}
	return &rows{res: res}, nil
}

// Close releases the connection (a no-op for the in-process engine).
func (c *conn) Close() error { return nil }

// ordinalArgs converts named driver values to positional ones. The
// engine dialect only has ordinal '?' placeholders, so named arguments
// are rejected rather than silently misbound.
func ordinalArgs(args []driver.NamedValue) ([]driver.Value, error) {
	vals := make([]driver.Value, len(args))
	for i, a := range args {
		if a.Name != "" {
			return nil, fmt.Errorf("sqldriver: named argument %q is not supported (use ordinal '?' placeholders)", a.Name)
		}
		vals[i] = a.Value
	}
	return vals, nil
}

// Begin starts a transaction. The engine is auto-commit only; the returned
// transaction is a no-op wrapper so database/sql helpers keep working.
func (c *conn) Begin() (driver.Tx, error) { return noopTx{}, nil }

type noopTx struct{}

func (noopTx) Commit() error   { return nil }
func (noopTx) Rollback() error { return nil }

type stmt struct {
	db  *engine.DB
	sql string
}

func (s *stmt) Close() error { return nil }

// NumInput reports the number of '?' placeholders in the statement (those
// inside string literals and line comments do not count).
func (s *stmt) NumInput() int {
	n, _, _ := scanPlaceholders(s.sql, nil)
	return n
}

// Exec runs a DDL/DML statement, binding '?' placeholders to args.
func (s *stmt) Exec(args []driver.Value) (driver.Result, error) {
	sql, err := bindPlaceholders(s.sql, args)
	if err != nil {
		return nil, err
	}
	_, n, err := s.db.Exec(sql)
	if err != nil {
		return nil, err
	}
	return result{rows: int64(n)}, nil
}

// Query runs a SELECT statement, binding '?' placeholders to args.
func (s *stmt) Query(args []driver.Value) (driver.Rows, error) {
	sql, err := bindPlaceholders(s.sql, args)
	if err != nil {
		return nil, err
	}
	res, err := s.db.Query(sql)
	if err != nil {
		return nil, err
	}
	return &rows{res: res}, nil
}

// ExecContext runs the prepared statement under ctx: checked before
// dispatch and threaded into the engine's execution loops.
func (s *stmt) ExecContext(ctx context.Context, args []driver.NamedValue) (driver.Result, error) {
	vals, err := ordinalArgs(args)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sql, err := bindPlaceholders(s.sql, vals)
	if err != nil {
		return nil, err
	}
	_, n, err := s.db.ExecContext(ctx, sql)
	if err != nil {
		return nil, err
	}
	return result{rows: int64(n)}, nil
}

// QueryContext runs the prepared SELECT under ctx, like ExecContext.
func (s *stmt) QueryContext(ctx context.Context, args []driver.NamedValue) (driver.Rows, error) {
	vals, err := ordinalArgs(args)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sql, err := bindPlaceholders(s.sql, vals)
	if err != nil {
		return nil, err
	}
	res, err := s.db.QueryContext(ctx, sql)
	if err != nil {
		return nil, err
	}
	return &rows{res: res}, nil
}

// bindPlaceholders substitutes args for the statement's '?' markers. The
// engine's SQL dialect has no placeholder token, so binding happens here,
// at the JDBC-shim layer the package stands in for: each argument is
// converted through value.FromGo (the same coercion surface tuples use)
// and rendered as a literal the lexer round-trips exactly.
func bindPlaceholders(sql string, args []driver.Value) (string, error) {
	want, bound, err := scanPlaceholders(sql, args)
	if err != nil {
		return "", err
	}
	if want != len(args) {
		return "", fmt.Errorf("sqldriver: statement has %d placeholders, got %d arguments", want, len(args))
	}
	if want == 0 {
		return sql, nil
	}
	return bound, nil
}

// scanPlaceholders walks sql, skipping single-quoted string literals
// (with ” escapes) and line comments, and counts '?' markers. With args
// != nil it also rewrites each marker to the literal form of the
// corresponding argument (running past len(args) is an error); in
// count-only mode (args == nil, as NumInput calls it per execution) no
// rewritten string is assembled.
func scanPlaceholders(sql string, args []driver.Value) (int, string, error) {
	var b *strings.Builder
	if args != nil {
		b = &strings.Builder{}
		b.Grow(len(sql))
	}
	n := 0
	for i := 0; i < len(sql); i++ {
		c := sql[i]
		switch {
		case c == '\'':
			j := i + 1
			for j < len(sql) {
				if sql[j] == '\'' {
					if j+1 < len(sql) && sql[j+1] == '\'' {
						j += 2
						continue
					}
					break
				}
				j++
			}
			if j < len(sql) {
				j++ // include the closing quote
			}
			if b != nil {
				b.WriteString(sql[i:j])
			}
			i = j - 1
		case c == '-' && i+1 < len(sql) && sql[i+1] == '-':
			j := i
			for j < len(sql) && sql[j] != '\n' {
				j++
			}
			if b != nil {
				b.WriteString(sql[i:j])
			}
			i = j - 1
		case c == '?':
			if b != nil {
				if n >= len(args) {
					return n + 1, "", fmt.Errorf("sqldriver: placeholder %d has no argument", n+1)
				}
				lit, err := literal(args[n])
				if err != nil {
					return n, "", fmt.Errorf("sqldriver: argument %d: %w", n+1, err)
				}
				b.WriteString(lit)
			}
			n++
		default:
			if b != nil {
				b.WriteByte(c)
			}
		}
	}
	if b == nil {
		return n, "", nil
	}
	return n, b.String(), nil
}

// literal renders one bound argument as a SQL literal of the engine
// dialect.
func literal(arg driver.Value) (string, error) {
	v, err := value.FromGo(arg)
	if err != nil {
		return "", err
	}
	switch {
	case v.IsNull():
		return "NULL", nil
	case v.K == value.KindInt:
		return strconv.FormatInt(v.I, 10), nil
	case v.K == value.KindFloat:
		if math.IsNaN(v.F) || math.IsInf(v.F, 0) {
			return "", fmt.Errorf("non-finite float %v cannot be bound", v.F)
		}
		s := strconv.FormatFloat(v.F, 'g', -1, 64)
		// Keep integral floats float-typed through the lexer.
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		return s, nil
	case v.K == value.KindText:
		return "'" + strings.ReplaceAll(v.S, "'", "''") + "'", nil
	case v.K == value.KindBool:
		if v.B {
			return "TRUE", nil
		}
		return "FALSE", nil
	default:
		return "", fmt.Errorf("unsupported value kind %v", v.K)
	}
}

type result struct{ rows int64 }

// LastInsertId is not supported by the engine.
func (result) LastInsertId() (int64, error) {
	return 0, fmt.Errorf("sqldriver: LastInsertId is not supported")
}

// RowsAffected returns the number of changed rows.
func (r result) RowsAffected() (int64, error) { return r.rows, nil }

type rows struct {
	res *engine.Result
	pos int
}

// Columns returns the output column names.
func (r *rows) Columns() []string { return r.res.Columns() }

func (r *rows) Close() error { return nil }

// Next copies the next row into dest.
func (r *rows) Next(dest []driver.Value) error {
	if r.pos >= len(r.res.Rows) {
		return io.EOF
	}
	row := r.res.Rows[r.pos]
	r.pos++
	for i, v := range row {
		dest[i] = v.Go()
	}
	return nil
}
