package sqldriver

import (
	"database/sql"
	"testing"

	"hippo/internal/engine"
)

func openTestDB(t *testing.T, name string) (*engine.DB, *sql.DB) {
	t.Helper()
	eng := engine.New()
	Register(name, eng)
	t.Cleanup(func() { Unregister(name) })
	db, err := sql.Open("hippo", name)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return eng, db
}

func TestExecAndQuery(t *testing.T) {
	_, db := openTestDB(t, "t1")
	if _, err := db.Exec("CREATE TABLE p (id INT, name TEXT, score FLOAT, ok BOOL)"); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec("INSERT INTO p VALUES (1, 'ann', 9.5, TRUE), (2, 'bob', NULL, FALSE)")
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := res.RowsAffected(); n != 2 {
		t.Errorf("RowsAffected = %d", n)
	}
	if _, err := res.LastInsertId(); err == nil {
		t.Error("LastInsertId should be unsupported")
	}

	rows, err := db.Query("SELECT id, name, score, ok FROM p WHERE id = 1")
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	cols, _ := rows.Columns()
	if len(cols) != 4 || cols[1] != "name" {
		t.Errorf("columns = %v", cols)
	}
	if !rows.Next() {
		t.Fatal("no rows")
	}
	var (
		id    int64
		name  string
		score float64
		ok    bool
	)
	if err := rows.Scan(&id, &name, &score, &ok); err != nil {
		t.Fatal(err)
	}
	if id != 1 || name != "ann" || score != 9.5 || !ok {
		t.Errorf("scanned %v %v %v %v", id, name, score, ok)
	}
	if rows.Next() {
		t.Error("expected one row")
	}
}

func TestNullScan(t *testing.T) {
	_, db := openTestDB(t, "t2")
	db.Exec("CREATE TABLE n (x INT)")
	db.Exec("INSERT INTO n VALUES (NULL)")
	var x sql.NullInt64
	if err := db.QueryRow("SELECT x FROM n").Scan(&x); err != nil {
		t.Fatal(err)
	}
	if x.Valid {
		t.Error("expected NULL")
	}
}

func TestUnregisteredDSN(t *testing.T) {
	db, err := sql.Open("hippo", "no-such-dsn")
	if err != nil {
		t.Fatal(err) // Open is lazy; error surfaces on first use
	}
	defer db.Close()
	if err := db.Ping(); err == nil {
		t.Error("Ping on unregistered DSN should fail")
	}
}

func TestPlaceholdersRejected(t *testing.T) {
	_, db := openTestDB(t, "t3")
	db.Exec("CREATE TABLE q (x INT)")
	if _, err := db.Exec("INSERT INTO q VALUES (1)", 42); err == nil {
		t.Error("args with no placeholders should fail")
	}
	if _, err := db.Query("SELECT * FROM q", 42); err == nil {
		t.Error("query args should fail")
	}
}

func TestTransactionsAreNoops(t *testing.T) {
	_, db := openTestDB(t, "t4")
	db.Exec("CREATE TABLE r (x INT)")
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec("INSERT INTO r VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	var n int64
	// Rollback does not undo (documented auto-commit behaviour).
	tx2, _ := db.Begin()
	tx2.Exec("INSERT INTO r VALUES (2)")
	tx2.Rollback()
	rows, _ := db.Query("SELECT x FROM r")
	for rows.Next() {
		n++
	}
	rows.Close()
	if n != 2 {
		t.Errorf("rows = %d, want 2 (auto-commit engine)", n)
	}
}

func TestSharedEngineVisibility(t *testing.T) {
	eng, db := openTestDB(t, "t5")
	db.Exec("CREATE TABLE s (x INT)")
	db.Exec("INSERT INTO s VALUES (7)")
	// Rows written via database/sql are visible to the native engine API.
	res, err := eng.Query("SELECT x FROM s")
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("native query: %v rows=%v", err, res)
	}
}
