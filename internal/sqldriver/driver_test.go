package sqldriver

import (
	"database/sql"
	"testing"

	"hippo/internal/engine"
)

func openTestDB(t *testing.T, name string) (*engine.DB, *sql.DB) {
	t.Helper()
	eng := engine.New()
	Register(name, eng)
	t.Cleanup(func() { Unregister(name) })
	db, err := sql.Open("hippo", name)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return eng, db
}

func TestExecAndQuery(t *testing.T) {
	_, db := openTestDB(t, "t1")
	if _, err := db.Exec("CREATE TABLE p (id INT, name TEXT, score FLOAT, ok BOOL)"); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec("INSERT INTO p VALUES (1, 'ann', 9.5, TRUE), (2, 'bob', NULL, FALSE)")
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := res.RowsAffected(); n != 2 {
		t.Errorf("RowsAffected = %d", n)
	}
	if _, err := res.LastInsertId(); err == nil {
		t.Error("LastInsertId should be unsupported")
	}

	rows, err := db.Query("SELECT id, name, score, ok FROM p WHERE id = 1")
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	cols, _ := rows.Columns()
	if len(cols) != 4 || cols[1] != "name" {
		t.Errorf("columns = %v", cols)
	}
	if !rows.Next() {
		t.Fatal("no rows")
	}
	var (
		id    int64
		name  string
		score float64
		ok    bool
	)
	if err := rows.Scan(&id, &name, &score, &ok); err != nil {
		t.Fatal(err)
	}
	if id != 1 || name != "ann" || score != 9.5 || !ok {
		t.Errorf("scanned %v %v %v %v", id, name, score, ok)
	}
	if rows.Next() {
		t.Error("expected one row")
	}
}

func TestNullScan(t *testing.T) {
	_, db := openTestDB(t, "t2")
	db.Exec("CREATE TABLE n (x INT)")
	db.Exec("INSERT INTO n VALUES (NULL)")
	var x sql.NullInt64
	if err := db.QueryRow("SELECT x FROM n").Scan(&x); err != nil {
		t.Fatal(err)
	}
	if x.Valid {
		t.Error("expected NULL")
	}
}

func TestUnregisteredDSN(t *testing.T) {
	db, err := sql.Open("hippo", "no-such-dsn")
	if err != nil {
		t.Fatal(err) // Open is lazy; error surfaces on first use
	}
	defer db.Close()
	if err := db.Ping(); err == nil {
		t.Error("Ping on unregistered DSN should fail")
	}
}

func TestPlaceholderBinding(t *testing.T) {
	_, db := openTestDB(t, "t3")
	if _, err := db.Exec("CREATE TABLE q (id INT, name TEXT, score FLOAT, ok BOOL)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO q VALUES (?, ?, ?, ?)", 1, "o'hara", 2.5, true); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO q VALUES (?, ?, ?, ?)", 2, "bob -- not a comment", nil, false); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO q VALUES (?, ?, ?, ?)", int64(3), []byte("carol"), -1e21, true); err != nil {
		t.Fatal(err)
	}

	// Quoted text with an embedded quote round-trips.
	var name string
	if err := db.QueryRow("SELECT name FROM q WHERE id = ?", 1).Scan(&name); err != nil {
		t.Fatal(err)
	}
	if name != "o'hara" {
		t.Errorf("name = %q", name)
	}
	// NULL bound via nil arg.
	var score sql.NullFloat64
	if err := db.QueryRow("SELECT score FROM q WHERE id = ?", 2).Scan(&score); err != nil {
		t.Fatal(err)
	}
	if score.Valid {
		t.Error("expected NULL score")
	}
	// Exponent-form float round-trips through the lexer.
	if err := db.QueryRow("SELECT score FROM q WHERE id = ?", 3).Scan(&score); err != nil {
		t.Fatal(err)
	}
	if !score.Valid || score.Float64 != -1e21 {
		t.Errorf("score = %+v, want -1e21", score)
	}
	// Prepared statements report and enforce the placeholder count.
	st, err := db.Prepare("SELECT id FROM q WHERE id = ? AND ok = ?")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var id int64
	if err := st.QueryRow(3, true).Scan(&id); err != nil || id != 3 {
		t.Fatalf("prepared scan: id=%d err=%v", id, err)
	}
	if _, err := st.Query(3); err == nil {
		t.Error("missing argument should fail")
	}
	if _, err := db.Query("SELECT * FROM q", 42); err == nil {
		t.Error("arg without a placeholder should fail")
	}
}

func TestPlaceholderMarkersInsideLiteralsDontBind(t *testing.T) {
	_, db := openTestDB(t, "t3b")
	if _, err := db.Exec("CREATE TABLE q (x INT, s TEXT)"); err != nil {
		t.Fatal(err)
	}
	// The '?' inside the string literal is data, not a placeholder.
	if _, err := db.Exec("INSERT INTO q VALUES (?, 'really?')", 1); err != nil {
		t.Fatal(err)
	}
	var s string
	if err := db.QueryRow("SELECT s FROM q WHERE x = ?", 1).Scan(&s); err != nil {
		t.Fatal(err)
	}
	if s != "really?" {
		t.Errorf("s = %q", s)
	}
	// A '?' after a line comment is ignored too.
	if _, err := db.Exec("INSERT INTO q VALUES (?, 'c') -- trailing ? comment", 2); err != nil {
		t.Fatal(err)
	}
}

func TestTransactionsAreNoops(t *testing.T) {
	_, db := openTestDB(t, "t4")
	db.Exec("CREATE TABLE r (x INT)")
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec("INSERT INTO r VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	var n int64
	// Rollback does not undo (documented auto-commit behaviour).
	tx2, _ := db.Begin()
	tx2.Exec("INSERT INTO r VALUES (2)")
	tx2.Rollback()
	rows, _ := db.Query("SELECT x FROM r")
	for rows.Next() {
		n++
	}
	rows.Close()
	if n != 2 {
		t.Errorf("rows = %d, want 2 (auto-commit engine)", n)
	}
}

func TestSharedEngineVisibility(t *testing.T) {
	eng, db := openTestDB(t, "t5")
	db.Exec("CREATE TABLE s (x INT)")
	db.Exec("INSERT INTO s VALUES (7)")
	// Rows written via database/sql are visible to the native engine API.
	res, err := eng.Query("SELECT x FROM s")
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("native query: %v rows=%v", err, res)
	}
}
