package hippo

import (
	"errors"
	"testing"

	"hippo/internal/engine"
	"hippo/internal/envelope"
)

func TestExecBatchEndToEnd(t *testing.T) {
	db := Open()
	mustExec(db, "CREATE TABLE emp (id INT, salary INT)")
	mustExec(db, "INSERT INTO emp VALUES (1, 100), (2, 200)")
	db.AddFD("emp", []string{"id"}, []string{"salary"})
	if _, err := db.Analyze(); err != nil {
		t.Fatal(err)
	}
	affected, err := db.ExecBatch(
		"INSERT INTO emp VALUES (1, 150)", // conflicts with (1,100)
		"INSERT INTO emp VALUES (3, 300)",
		"INSERT INTO emp VALUES (4, 400)",
		"DELETE FROM emp WHERE id = 4", // transient: coalesces away
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(affected) != 4 {
		t.Fatalf("affected = %v", affected)
	}
	res, _, err := db.ConsistentQuery("SELECT * FROM emp")
	if err != nil {
		t.Fatal(err)
	}
	// id 1 is conflicted (two salaries), ids 2 and 3 are certain.
	if len(res.Rows) != 2 {
		t.Fatalf("consistent answers = %d, want 2: %v", len(res.Rows), res.Rows)
	}
	// The batch drained as one unit; the transient row cost no delta, so
	// only the two real inserts reached the incremental detector.
	if m := db.System().Maintenance(); m.DeltasApplied != 2 {
		t.Errorf("deltas applied = %d, want 2 (transient insert+delete coalesced)", m.DeltasApplied)
	}
	// A failing batch rolls back and reports its statement.
	_, err = db.ExecBatch("INSERT INTO emp VALUES (9, 900)", "DROP TABLE emp")
	var be *engine.BatchError
	if !errors.As(err, &be) || be.Index != 1 {
		t.Fatalf("err = %v, want *engine.BatchError at statement 1", err)
	}
	res, _, err = db.ConsistentQuery("SELECT * FROM emp WHERE id = 9")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Error("rejected batch leaked a row")
	}
}

// TestUnsupportedQueriesReturnTypedErrors feeds the shapes that once
// panicked (or could have) through the public entry points: every one must
// come back as an error carrying envelope.ErrUnsupported, with the process
// alive and the system still serving.
func TestUnsupportedQueriesReturnTypedErrors(t *testing.T) {
	db := Open()
	mustExec(db, "CREATE TABLE emp (id INT, salary INT)")
	mustExec(db, "INSERT INTO emp VALUES (1, 100), (1, 200)")
	db.AddFD("emp", []string{"id"}, []string{"salary"})
	unsupported := []string{
		"SELECT id FROM emp",             // ∃-projection (footnote 4)
		"SELECT id + 1, salary FROM emp", // computed projection
		"SELECT * FROM emp e WHERE EXISTS (SELECT * FROM emp m WHERE m.id = e.id)", // EXISTS
	}
	for _, q := range unsupported {
		_, _, err := db.ConsistentQuery(q)
		if err == nil {
			t.Fatalf("ConsistentQuery(%q) should fail", q)
		}
		if !errors.Is(err, envelope.ErrUnsupported) {
			t.Errorf("ConsistentQuery(%q) err = %v, want envelope.ErrUnsupported", q, err)
		}
	}
	// The system still answers supported queries afterwards.
	res, _, err := db.ConsistentQuery("SELECT * FROM emp WHERE salary > 0")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Errorf("conflicted rows must not be consistent answers: %v", res.Rows)
	}
}
