// Data integration: the paper's motivating scenario. Two autonomous
// sources are unioned into one relation; each source is internally
// consistent, but together they violate integrity constraints — and
// removing the conflicting data is not an option because neither source
// is authoritative.
//
// The example integrates two customer databases that disagree on some
// customers' credit limits (FD violation), and one person appears both as
// an active customer and on the banned list (exclusion constraint). Hippo
// answers "which customers can we certainly extend credit to?" without
// deciding which source is right.
//
// Run with: go run ./examples/integration
package main

import (
	"fmt"
	"log"

	"hippo"
	"hippo/internal/value"
)

func main() {
	db := hippo.Open()
	mustExec(db, "CREATE TABLE customer (cid INT, name TEXT, credit INT)")
	mustExec(db, "CREATE TABLE banned (cid INT, reason TEXT)")

	// Source A's customers.
	mustExec(db, `INSERT INTO customer VALUES
		(1, 'acme corp', 50000),
		(2, 'bolt ltd', 20000),
		(3, 'cogs inc', 10000)`)
	// Source B overlaps and disagrees on bolt's credit, adds delta.
	mustExec(db, `INSERT INTO customer VALUES
		(2, 'bolt ltd', 35000),
		(4, 'delta gmbh', 15000)`)
	// The compliance feed bans cogs.
	mustExec(db, "INSERT INTO banned VALUES (3, 'fraud investigation')")

	// Integrity: cid determines the credit line…
	db.AddFD("customer", []string{"cid"}, []string{"credit"})
	// …and nobody may be both an active customer and banned.
	if err := db.AddDenial("customer c, banned b WHERE c.cid = b.cid"); err != nil {
		log.Fatal(err)
	}

	rep, err := db.Analyze()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("integrated instance: %d conflict edges (%d tuples involved)\n\n",
		rep.Edges, rep.ConflictingTuples)

	const q = "SELECT * FROM customer WHERE credit >= 15000"

	plain, _ := db.Query(q)
	fmt.Printf("naive integration (plain SQL, %d rows — trusts everything):\n", len(plain.Rows))
	printRows(plain.Rows)

	res, stats, err := db.ConsistentQuery(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncertain credit decisions (consistent answers, %d rows):\n", len(res.Rows))
	printRows(res.Rows)
	fmt.Println(`
acme (no conflicts) and delta (single source) are certain.
bolt is uncertain: the sources disagree on its credit line, so no
specific (cid, name, credit) row for bolt is in every repair.
cogs is uncertain: some repairs resolve the exclusion conflict by
dropping the ban instead of the customer row.`)

	// Disjunctive rescue: bolt's credit is ≥ 20000 in every repair, which a
	// union query certifies even though neither source row is certain alone.
	unionQ := `SELECT * FROM customer WHERE name = 'bolt ltd' AND credit = 20000
	           UNION SELECT * FROM customer WHERE name = 'bolt ltd' AND credit = 35000`
	_ = unionQ // tuple-level certainty still fails; see examples/disjunctive

	fmt.Printf("pipeline: %d candidates → %d answers, %v total\n",
		stats.Candidates, stats.Answers, stats.Total)
}

func printRows(rows []hippo.Tuple) {
	for _, r := range rows {
		fmt.Println("  ", value.TupleString(r))
	}
}

// mustExec runs a setup statement, exiting with the error on failure (the
// library itself no longer panics on bad statements).
func mustExec(db *hippo.DB, sql string) {
	if _, _, err := db.Exec(sql); err != nil {
		log.Fatalf("setup: %v", err)
	}
}
