// Quickstart: the smallest end-to-end Hippo session.
//
// An employee table violates the functional dependency id → salary (two
// conflicting salary records for Ann and for Cat). We compare three views
// of the data:
//
//  1. plain SQL — pretends the data is fine and over-reports;
//  2. repairs — every way the conflicts could be resolved by deletions;
//  3. consistent answers — what Hippo certifies as true in *every* repair,
//     computed without enumerating the repairs.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"hippo"
	"hippo/internal/value"
)

func main() {
	db := hippo.Open()
	mustExec(db, "CREATE TABLE emp (id INT, name TEXT, salary INT)")
	mustExec(db, `INSERT INTO emp VALUES
		(1, 'ann', 100), (1, 'ann', 200),
		(2, 'bob', 150),
		(3, 'cat', 300), (3, 'cat', 400),
		(4, 'dan', 50)`)
	db.AddFD("emp", []string{"id"}, []string{"salary"})

	rep, err := db.Analyze()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("conflict hypergraph: %d edges over %d conflicting tuples\n\n",
		rep.Edges, rep.ConflictingTuples)

	const q = "SELECT * FROM emp WHERE salary >= 100"

	plain, err := db.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plain SQL (%d rows — includes uncertain tuples):\n", len(plain.Rows))
	printRows(plain.Rows)

	n, err := db.CountRepairs()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nthe database has %d repairs (2 choices for ann × 2 for cat)\n", n)

	res, stats, err := db.ConsistentQuery(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nconsistent answers (%d rows — true in every repair):\n", len(res.Rows))
	printRows(res.Rows)
	if stats.Strategy == "rewrite" {
		fmt.Printf("\ntier: %s — answered by the compiled first-order rewriting, %d candidates certified\n",
			stats.Strategy, stats.Candidates)
	} else {
		fmt.Printf("\ntier: %s — %d candidates from the envelope, %d certified by the prover\n",
			stats.Strategy, stats.Candidates, stats.Answers)
		fmt.Printf("prover did %d membership checks using the conflict hypergraph, no repairs materialized\n",
			stats.ProverStats.MembershipChecks)
	}

	// Ground truth for the skeptical: brute force over all repairs.
	oracle, err := db.OracleConsistentQuery(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbrute-force oracle agrees: %d rows\n", len(oracle))
}

func printRows(rows []hippo.Tuple) {
	for _, r := range rows {
		fmt.Println("  ", value.TupleString(r))
	}
}

// mustExec runs a setup statement, exiting with the error on failure (the
// library itself no longer panics on bad statements).
func mustExec(db *hippo.DB, sql string) {
	if _, _, err := db.Exec(sql); err != nil {
		log.Fatalf("setup: %v", err)
	}
}
