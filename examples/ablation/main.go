// Ablation walk-through: the membership-check optimization from §2 of the
// paper. The base version of Hippo answers every membership check by
// "executing the appropriate membership queries on the database", which
// the paper calls "a costly procedure"; the optimized version answers
// them from in-memory structures without touching the database.
//
// This example runs the same difference query both ways on a synthetic
// instance and prints the work counters side by side.
//
// Run with: go run ./examples/ablation
package main

import (
	"fmt"
	"log"
	"time"

	"hippo"
	"hippo/internal/workload"
)

func main() {
	db := hippo.Open()
	rep, err := workload.Emp(db.Engine(), workload.EmpConfig{
		N: 5000, ConflictRate: 0.04, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	db.AddFD("emp", []string{"id"}, []string{"salary"})
	if _, err := db.Analyze(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instance: %d rows, %d injected conflicts\n\n", rep.Rows, rep.Conflicts)

	// A difference query makes the prover check membership of the
	// subtracted side for every candidate.
	const q = "SELECT * FROM emp EXCEPT SELECT * FROM emp WHERE salary > 90000"

	type outcome struct {
		label   string
		dur     time.Duration
		checks  int64
		queries int64
		answers int
	}
	var results []outcome

	for _, naive := range []bool{true, false} {
		var opts []hippo.Option
		label := "indexed prover (optimized)"
		if naive {
			opts = append(opts, hippo.WithNaiveProver())
			label = "naive prover (base version)"
		}
		t0 := time.Now()
		res, st, err := db.ConsistentQuery(q, opts...)
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, outcome{
			label:   label,
			dur:     time.Since(t0),
			checks:  st.ProverStats.MembershipChecks,
			queries: st.EngineQuery,
			answers: len(res.Rows),
		})
	}

	fmt.Printf("%-30s %12s %14s %16s %8s\n", "prover", "time", "memb. checks", "engine queries", "answers")
	for _, r := range results {
		fmt.Printf("%-30s %12v %14d %16d %8d\n", r.label, r.dur.Round(time.Microsecond),
			r.checks, r.queries, r.answers)
	}
	if results[0].answers != results[1].answers {
		log.Fatal("BUG: provers disagree")
	}
	speedup := float64(results[0].dur) / float64(results[1].dur)
	fmt.Printf("\nsame answers; answering checks without executing queries on the database is %.1fx faster here\n", speedup)
}
