// Range-consistent aggregation (extension from the paper's reference [3],
// "Scalar Aggregation in Inconsistent Databases"): an aggregate usually
// takes a different value in each repair, so its consistent answer is the
// tightest interval containing the value over every repair.
//
// Scenario: a payroll table integrated from two HR exports disagrees on a
// few salaries. "What is the total payroll?" has no single certain
// answer, but it certainly lies in a computable range — and the range is
// computed in one scan, no repairs enumerated.
//
// Run with: go run ./examples/aggregation
package main

import (
	"fmt"
	"log"

	"hippo"
)

func main() {
	db := hippo.Open()
	mustExec(db, "CREATE TABLE payroll (emp INT, salary INT)")
	mustExec(db, `INSERT INTO payroll VALUES
		(1, 50000),
		(2, 61000), (2, 64000),
		(3, 55000),
		(4, 70000), (4, 78000),
		(5, 42000)`)
	db.AddFD("payroll", []string{"emp"}, []string{"salary"})

	total, err := db.ConsistentAggregate("payroll", hippo.AggSum, "salary", "")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("total payroll is certainly in %s\n", total)

	cnt, err := db.ConsistentAggregate("payroll", hippo.AggCount, "", "salary > 60000")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("employees certainly earning > 60000: %s\n", cnt)

	top, err := db.ConsistentAggregate("payroll", hippo.AggMax, "salary", "")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("highest salary is in %s\n", top)

	low, err := db.ConsistentAggregate("payroll", hippo.AggMin, "salary", "")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lowest salary is in %s\n", low)

	// Cross-check against brute force over all repairs.
	n, err := db.CountRepairs()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n(the database has %d repairs; the ranges above were computed without building any)\n", n)
}

// mustExec runs a setup statement, exiting with the error on failure (the
// library itself no longer panics on bad statements).
func mustExec(db *hippo.DB, sql string) {
	if _, _, err := db.Exec(sql); err != nil {
		log.Fatalf("setup: %v", err)
	}
}
