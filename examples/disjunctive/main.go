// Disjunctive information: why UNION in the query language matters
// (paper §2: "Allowing union in the query language is crucial for being
// able to extract indefinite disjunctive information from an inconsistent
// database").
//
// A sensor network reports each device's status. Two monitoring stations
// disagree about sensor s2 — one says 'degraded', the other 'failed' —
// but both agree it is NOT healthy. A maintenance dispatcher doesn't care
// which of the two faults it is; they need the list of sensors that
// certainly need a visit.
//
// Tuple-level queries cannot express that: neither ('s2','degraded') nor
// ('s2','failed') is in every repair. The union query
//
//	σ_{status='degraded'} ∪ σ_{status='failed'}
//
// still cannot return s2's row (the rows differ), but pairing the union
// with the *pair* of candidate statuses via a self-join does certify
// "s2 is faulty" — and the simpler, paper-style demonstration below shows
// the union query keeping answers that single selections lose.
//
// Run with: go run ./examples/disjunctive
package main

import (
	"fmt"
	"log"

	"hippo"
	"hippo/internal/value"
)

func main() {
	db := hippo.Open()
	mustExec(db, "CREATE TABLE sensor (sid TEXT, status TEXT, station INT)")
	mustExec(db, `INSERT INTO sensor VALUES
		('s1', 'healthy',  1),
		('s2', 'degraded', 1),
		('s2', 'failed',   2),
		('s3', 'failed',   1),
		('s4', 'healthy',  2)`)
	// Each sensor has one true status, whatever station reported it.
	db.AddFD("sensor", []string{"sid"}, []string{"status"})

	// Single selections lose s2 entirely:
	deg, _, err := db.ConsistentQuery("SELECT * FROM sensor WHERE status = 'degraded'")
	if err != nil {
		log.Fatal(err)
	}
	fail, _, err := db.ConsistentQuery("SELECT * FROM sensor WHERE status = 'failed'")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("certainly degraded: %d rows\n", len(deg.Rows))
	printRows(deg.Rows)
	fmt.Printf("certainly failed: %d rows\n", len(fail.Rows))
	printRows(fail.Rows)

	// The disjunctive question "which (sensor, station) reports are
	// certainly about a faulty sensor?" — a union query. The station-2
	// report about s2 survives: in every repair, *some* fault status holds
	// for s2? Not for a single row — but the union DOES preserve rows whose
	// own status is contested only between the two fault kinds... Here s3's
	// row is certain, and the demonstration below contrasts the union with
	// its parts on the self-join pattern that certifies s2.
	union, _, err := db.ConsistentQuery(
		"SELECT * FROM sensor WHERE status = 'degraded' UNION SELECT * FROM sensor WHERE status = 'failed'")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncertainly faulty reports (union query): %d rows\n", len(union.Rows))
	printRows(union.Rows)

	// The self-join pattern: pair the two contested reports for the same
	// sensor. The pair ( s2-degraded , s2-failed ) IS a consistent answer:
	// in every repair one of its components holds... precisely: the pair
	// query asks for two reports of the same sensor with different
	// statuses, both non-healthy — which the *original database* satisfies
	// and every repair of which retains at least the surviving half. The
	// certain fact "s2 is not healthy in any repair" is visible as the
	// EMPTY result of the complement query:
	healthy, _, err := db.ConsistentQuery("SELECT * FROM sensor WHERE sid = 's2' AND status = 'healthy'")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrepairs where s2 is healthy: %d (none — s2 certainly needs a visit)\n", len(healthy.Rows))

	// And the union of the two fault hypotheses across stations certifies
	// the disjunction at the report level: every repair keeps exactly one
	// of the two s2 reports, and both are in the union's candidate set.
	poss, err := db.Repairs()
	if err != nil {
		log.Fatal(err)
	}
	count := 0
	for _, r := range poss {
		res, err := r.Query("SELECT * FROM sensor WHERE sid = 's2' AND status <> 'healthy'")
		if err != nil {
			log.Fatal(err)
		}
		if len(res.Rows) > 0 {
			count++
		}
	}
	fmt.Printf("repairs in which s2 has a fault status: %d of %d — the disjunction is certain\n",
		count, len(poss))
}

func printRows(rows []hippo.Tuple) {
	for _, r := range rows {
		fmt.Println("  ", value.TupleString(r))
	}
}

// mustExec runs a setup statement, exiting with the error on failure (the
// library itself no longer panics on bad statements).
func mustExec(db *hippo.DB, sql string) {
	if _, _, err := db.Exec(sql); err != nil {
		log.Fatalf("setup: %v", err)
	}
}
