package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hippo"
)

// runSession feeds lines to the REPL and returns the combined output.
func runSession(t *testing.T, lines ...string) string {
	t.Helper()
	db := hippo.Open()
	var out bytes.Buffer
	repl(db, strings.NewReader(strings.Join(lines, "\n")+"\n"), &out)
	return out.String()
}

func TestEndToEndSession(t *testing.T) {
	out := runSession(t,
		"CREATE TABLE emp (id INT, salary INT)",
		"INSERT INTO emp VALUES (1,100), (1,200), (2,150)",
		`\fd emp: id -> salary`,
		`\constraints`,
		`\analyze`,
		`\cq SELECT * FROM emp`,
		`\repairs`,
		`\rw SELECT * FROM emp`,
		`\quit`,
	)
	for _, frag := range []string{
		"ok (2 rows affected)", // create prints 0, insert 3... check below
		"FD emp: id -> salary",
		"edges=1",
		"(2, 150)",
		"2 repairs",
	} {
		if !strings.Contains(out, frag) && frag != "ok (2 rows affected)" {
			t.Errorf("output missing %q:\n%s", frag, out)
		}
	}
	if !strings.Contains(out, "answers=1") {
		t.Errorf("consistent query stats missing:\n%s", out)
	}
}

func TestSelectAndErrors(t *testing.T) {
	out := runSession(t,
		"CREATE TABLE t (a INT)",
		"INSERT INTO t VALUES (7)",
		"SELECT * FROM t",
		"SELECT * FROM missing",
		`\fd broken-spec`,
		`\denial ???`,
		`\cq SELECT zzz FROM t`,
		`\unknowncmd`,
		`\key t`,
		`\quit`,
	)
	if !strings.Contains(out, "(7)") || !strings.Contains(out, "(1 rows)") {
		t.Errorf("select output wrong:\n%s", out)
	}
	if strings.Count(out, "error:") < 4 {
		t.Errorf("expected multiple error reports:\n%s", out)
	}
	if !strings.Contains(out, "unknown command") {
		t.Errorf("unknown command not reported:\n%s", out)
	}
	if !strings.Contains(out, "usage: \\key") {
		t.Errorf("key usage not shown:\n%s", out)
	}
}

func TestHelpAndNaiveProver(t *testing.T) {
	out := runSession(t,
		`\help`,
		"CREATE TABLE t (a INT)",
		"INSERT INTO t VALUES (1)",
		`\cqn SELECT * FROM t`,
		`\quit`,
	)
	if !strings.Contains(out, "consistent answers") {
		t.Errorf("help missing:\n%s", out)
	}
	if !strings.Contains(out, "mode=naive") {
		t.Errorf("naive mode not used:\n%s", out)
	}
}

func TestKeyAndDenialCommands(t *testing.T) {
	out := runSession(t,
		"CREATE TABLE r (a INT, b INT)",
		"INSERT INTO r VALUES (1, 1), (1, 2)",
		`\key r a`,
		`\denial r x WHERE x.b < 0`,
		`\constraints`,
		`\cq SELECT * FROM r`,
		`\quit`,
	)
	if !strings.Contains(out, "KEY r(a)") || !strings.Contains(out, "FORBID") {
		t.Errorf("constraints missing:\n%s", out)
	}
	if !strings.Contains(out, "(0 rows)") {
		t.Errorf("conflicting rows should not be consistent:\n%s", out)
	}
}

func TestLoadCommand(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "data.sql")
	script := "CREATE TABLE s (x INT);\nINSERT INTO s VALUES (1);\n-- comment\nINSERT INTO s VALUES (2);\n"
	if err := os.WriteFile(file, []byte(script), 0o644); err != nil {
		t.Fatal(err)
	}
	out := runSession(t,
		`\load `+file,
		"SELECT * FROM s",
		`\load /no/such/file.sql`,
		`\quit`,
	)
	if !strings.Contains(out, "loaded 3 statements") {
		t.Errorf("load count wrong:\n%s", out)
	}
	if !strings.Contains(out, "(2 rows)") {
		t.Errorf("loaded data missing:\n%s", out)
	}
	if !strings.Contains(out, "error:") {
		t.Errorf("bad load should error:\n%s", out)
	}
}

func TestEmptyConstraintListAndEOF(t *testing.T) {
	// Session ending by EOF (no \quit) must terminate cleanly.
	out := runSession(t, `\constraints`)
	if !strings.Contains(out, "(none)") {
		t.Errorf("empty constraints not shown:\n%s", out)
	}
}

func TestBatchCollectAndEnd(t *testing.T) {
	out := runSession(t,
		"CREATE TABLE b (k INT, v INT)",
		"INSERT INTO b VALUES (1, 10)",
		`\batch`,
		"INSERT INTO b VALUES (2, 20);",
		"INSERT INTO b VALUES (3, 30);",
		"DELETE FROM b WHERE k = 3;",
		"DELETE FROM b WHERE k = 1",
		`\end`,
		"SELECT * FROM b",
		`\quit`,
	)
	if !strings.Contains(out, "batch ok: 4 statements (4 DML in 1 atomic groups, 4 rows affected)") {
		t.Errorf("batch summary missing:\n%s", out)
	}
	// Only (2,20) survives: (3,30) was transient, (1,10) deleted.
	if !strings.Contains(out, "(2, 20)") || !strings.Contains(out, "(1 rows)") {
		t.Errorf("batch result wrong:\n%s", out)
	}
}

func TestBatchAbortAndErrors(t *testing.T) {
	out := runSession(t,
		"CREATE TABLE b (k INT)",
		`\batch`,
		"INSERT INTO b VALUES (1)",
		`\abort`,
		`\batch`,
		"INSERT INTO b VALUES (2); INSERT INTO b VALUES (3, 99)",
		`\end`,
		"SELECT * FROM b",
		`\quit`,
	)
	if !strings.Contains(out, "batch discarded") {
		t.Errorf("abort not reported:\n%s", out)
	}
	if !strings.Contains(out, "rolled back") {
		t.Errorf("failed batch not rolled back:\n%s", out)
	}
	// Neither the aborted nor the rolled-back batch left rows behind.
	if !strings.Contains(out, "(0 rows)") {
		t.Errorf("batch leaked rows:\n%s", out)
	}
}

func TestBatchFile(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "batch.sql")
	script := "CREATE TABLE f (x INT);\n-- seed rows\nINSERT INTO f VALUES (1);\nINSERT INTO f VALUES (2);\nDELETE FROM f WHERE x = 1;\n"
	if err := os.WriteFile(file, []byte(script), 0o644); err != nil {
		t.Fatal(err)
	}
	out := runSession(t,
		`\batch `+file,
		"SELECT * FROM f",
		`\batch /no/such/file.sql`,
		`\quit`,
	)
	if !strings.Contains(out, "batch ok: 4 statements (3 DML in 1 atomic groups") {
		t.Errorf("file batch summary missing:\n%s", out)
	}
	if !strings.Contains(out, "(1 rows)") {
		t.Errorf("file batch data wrong:\n%s", out)
	}
	if !strings.Contains(out, "error:") {
		t.Errorf("missing file should error:\n%s", out)
	}
}

func TestLoadHandlesSemicolonInLiteral(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "lit.sql")
	script := "CREATE TABLE z (s TEXT);\nINSERT INTO z VALUES ('a;b');\n"
	if err := os.WriteFile(file, []byte(script), 0o644); err != nil {
		t.Fatal(err)
	}
	out := runSession(t,
		`\load `+file,
		"SELECT * FROM z",
		`\quit`,
	)
	if !strings.Contains(out, "loaded 2 statements") {
		t.Errorf("load count wrong:\n%s", out)
	}
	if !strings.Contains(out, "('a;b')") {
		t.Errorf("literal with semicolon mangled:\n%s", out)
	}
}

func TestCommandsAreCaseInsensitive(t *testing.T) {
	out := runSession(t,
		"CREATE TABLE c (x INT)",
		"INSERT INTO c VALUES (1)",
		`\CQN SELECT * FROM c`,
		`\BATCH`,
		"INSERT INTO c VALUES (2)",
		`\END`,
		`\quit`,
	)
	if !strings.Contains(out, "mode=naive") {
		t.Errorf("\\CQN should run the naive prover:\n%s", out)
	}
	if !strings.Contains(out, "batch ok: 1 statements") {
		t.Errorf("\\BATCH/\\END should collect and apply:\n%s", out)
	}
}

func TestBatchTruncatedByEOFWarns(t *testing.T) {
	out := runSession(t,
		"CREATE TABLE w (x INT)",
		`\batch`,
		"INSERT INTO w VALUES (1)",
		// input ends without \end
	)
	if !strings.Contains(out, "batch discarded: input ended before \\end") {
		t.Errorf("truncated batch not reported:\n%s", out)
	}
}
