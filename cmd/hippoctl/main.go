// Command hippoctl is an interactive shell for the Hippo system: load
// data with plain SQL, declare integrity constraints, inspect conflicts,
// and compare consistent answers against plain SQL and the rewriting
// baseline.
//
// Meta commands (everything else is executed as SQL):
//
//	\fd <rel>: <a,b> -> <c>     declare a functional dependency
//	\key <rel> <a,b>            declare a key constraint
//	\denial <atoms WHERE cond>  declare a general denial constraint
//	\constraints                list declared constraints
//	\analyze                    run conflict detection, print hypergraph stats
//	\cq <select>                consistent answers (Hippo)
//	\cqn <select>               consistent answers with the naive prover
//	\rw <select>                consistent answers via query rewriting
//	\maint                      maintenance stats (deltas, rebuilds, verdict cache)
//	\repairs                    count repairs (small instances only)
//	\load <file.sql>            execute semicolon-separated statements from a file
//	\help                       this text
//	\quit                       exit
package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"hippo"
	"hippo/internal/value"
)

func main() {
	db := hippo.Open()
	fmt.Printf("%s — type \\help for commands\n", hippo.Version)
	repl(db, os.Stdin, os.Stdout)
}

func repl(db *hippo.DB, in io.Reader, out io.Writer) {
	scanner := bufio.NewScanner(in)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	fmt.Fprint(out, "hippo> ")
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if line != "" {
			if !execute(db, out, line) {
				return
			}
		}
		fmt.Fprint(out, "hippo> ")
	}
}

// execute runs one line; it returns false to quit.
func execute(db *hippo.DB, out io.Writer, line string) bool {
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(out, "error: %v\n", r)
		}
	}()
	if !strings.HasPrefix(line, "\\") {
		runSQL(db, out, line)
		return true
	}
	cmd, rest, _ := strings.Cut(line[1:], " ")
	rest = strings.TrimSpace(rest)
	switch strings.ToLower(cmd) {
	case "quit", "q", "exit":
		return false
	case "help", "h":
		fmt.Fprintln(out, helpText)
	case "fd":
		if err := db.AddFDSpec(rest); err != nil {
			fmt.Fprintf(out, "error: %v\n", err)
		} else {
			fmt.Fprintln(out, "ok")
		}
	case "key":
		parts := strings.Fields(rest)
		if len(parts) != 2 {
			fmt.Fprintln(out, "usage: \\key <rel> <a,b>")
			break
		}
		db.AddKey(parts[0], strings.Split(parts[1], ",")...)
		fmt.Fprintln(out, "ok")
	case "denial":
		if err := db.AddDenial(rest); err != nil {
			fmt.Fprintf(out, "error: %v\n", err)
		} else {
			fmt.Fprintln(out, "ok")
		}
	case "constraints":
		for _, c := range db.Constraints() {
			fmt.Fprintln(out, " ", c)
		}
		if len(db.Constraints()) == 0 {
			fmt.Fprintln(out, "  (none)")
		}
	case "analyze":
		t0 := time.Now()
		rep, err := db.Analyze()
		if err != nil {
			fmt.Fprintf(out, "error: %v\n", err)
			break
		}
		fmt.Fprintf(out, "constraints=%d edges=%d conflicting-tuples=%d max-degree=%d (%v)\n",
			rep.Constraints, rep.Edges, rep.ConflictingTuples, rep.MaxDegree, time.Since(t0))
	case "cq", "cqn":
		var opts []hippo.Option
		if cmd == "cqn" {
			opts = append(opts, hippo.WithNaiveProver())
		}
		res, st, err := db.ConsistentQuery(rest, opts...)
		if err != nil {
			fmt.Fprintf(out, "error: %v\n", err)
			break
		}
		printResult(out, res)
		fmt.Fprintln(out, hippo.FormatStats(st))
	case "rw":
		res, err := db.RewrittenQuery(rest)
		if err != nil {
			fmt.Fprintf(out, "error: %v\n", err)
			break
		}
		printResult(out, res)
	case "maint":
		sys := db.System()
		m := sys.Maintenance()
		fmt.Fprintf(out, "deltas-applied=%d edges-added=%d edges-removed=%d combinations=%d full-rebuilds=%d pending=%d\n",
			m.DeltasApplied, m.EdgesAdded, m.EdgesRemoved, m.Combinations,
			m.FullRebuilds, sys.PendingDeltas())
		fmt.Fprintf(out, "epoch=%d views-published=%d views-reclaimed=%d slabs-reclaimed=%d\n",
			sys.Epoch(), m.ViewsPublished, m.ViewsReclaimed, m.SlabsReclaimed)
		c := sys.CacheStats()
		fmt.Fprintf(out, "verdict-cache: entries=%d hits=%d misses=%d stores=%d invalidated=%d evicted=%d resets=%d\n",
			c.Entries, c.Hits, c.Misses, c.Stores, c.Invalidated, c.Evicted, c.Resets)
	case "repairs":
		n, err := db.CountRepairs()
		if err != nil {
			fmt.Fprintf(out, "error: %v\n", err)
			break
		}
		fmt.Fprintf(out, "%d repairs\n", n)
	case "load":
		data, err := os.ReadFile(rest)
		if err != nil {
			fmt.Fprintf(out, "error: %v\n", err)
			break
		}
		n := 0
		for _, stmt := range strings.Split(string(data), ";") {
			// Drop full-line comments, then whitespace.
			var kept []string
			for _, ln := range strings.Split(stmt, "\n") {
				if !strings.HasPrefix(strings.TrimSpace(ln), "--") {
					kept = append(kept, ln)
				}
			}
			stmt = strings.TrimSpace(strings.Join(kept, "\n"))
			if stmt == "" {
				continue
			}
			if _, _, err := db.Exec(stmt); err != nil {
				fmt.Fprintf(out, "error at statement %d: %v\n", n+1, err)
				return true
			}
			n++
		}
		fmt.Fprintf(out, "loaded %d statements\n", n)
	default:
		fmt.Fprintf(out, "unknown command \\%s (try \\help)\n", cmd)
	}
	return true
}

func runSQL(db *hippo.DB, out io.Writer, sql string) {
	res, n, err := db.Exec(sql)
	if err != nil {
		fmt.Fprintf(out, "error: %v\n", err)
		return
	}
	if res != nil {
		printResult(out, res)
		return
	}
	fmt.Fprintf(out, "ok (%d rows affected)\n", n)
}

func printResult(out io.Writer, res *hippo.Result) {
	cols := res.Columns()
	fmt.Fprintln(out, strings.Join(cols, " | "))
	for _, row := range res.Rows {
		fmt.Fprintln(out, value.TupleString(row))
	}
	fmt.Fprintf(out, "(%d rows)\n", len(res.Rows))
}

const helpText = `  SQL statements run directly (CREATE TABLE / INSERT / DELETE / SELECT).
  \fd <rel>: <a,b> -> <c>     declare a functional dependency
  \key <rel> <a,b>            declare a key constraint
  \denial <atoms WHERE cond>  declare a general denial constraint
  \constraints                list declared constraints
  \analyze                    run conflict detection
  \cq <select>                consistent answers (Hippo, indexed prover)
  \cqn <select>               consistent answers (naive prover)
  \rw <select>                consistent answers via query rewriting
  \maint                      maintenance stats (deltas, rebuilds, verdict cache)
  \repairs                    count repairs (exponential; small data only)
  \load <file.sql>            run statements from a file
  \quit                       exit`
