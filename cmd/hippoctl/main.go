// Command hippoctl is an interactive shell for the Hippo system: load
// data with plain SQL, declare integrity constraints, inspect conflicts,
// and compare consistent answers against plain SQL and the rewriting
// baseline.
//
// Meta commands (everything else is executed as SQL):
//
//	\fd <rel>: <a,b> -> <c>     declare a functional dependency
//	\key <rel> <a,b>            declare a key constraint
//	\denial <atoms WHERE cond>  declare a general denial constraint
//	\constraints                list declared constraints
//	\analyze                    run conflict detection, print hypergraph stats
//	\cq <select>                consistent answers (tiered planner picks the strategy)
//	\cqn <select>               consistent answers with the naive prover
//	\cqp <select>               consistent answers pinned to the prover tier
//	\cqr <select>               consistent answers, rewrite tier required (errors if ineligible)
//	\rw <select>                consistent answers via query rewriting
//	\maint                      maintenance stats (deltas, rebuilds, caches, tier counts)
//	\repairs                    count repairs (small instances only)
//	\load <file.sql>            execute semicolon-separated statements from a file
//	\batch <file.sql>           group-commit a file: DML runs apply atomically
//	\batch ... \end             collect statements, then apply them as one batch
//	\checkpoint                 snapshot durable state and truncate the WAL (-dir mode)
//	\help                       this text
//	\quit                       exit
//
// With -dir <path> the database is durable: tables, indexes, and
// constraints persist under the directory through a write-ahead log and
// checkpoints, and restarting hippoctl with the same -dir resumes exactly
// where the last session committed.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"hippo"
	"hippo/internal/sqlparse"
	"hippo/internal/value"
)

func main() {
	var (
		dir    = flag.String("dir", "", "durability directory (empty: in-memory)")
		noSync = flag.Bool("nosync", false, "skip per-commit fsync (with -dir)")
		shards = flag.Int("shards", 1, "certification shard count K (1 = unsharded)")
	)
	flag.Parse()
	db, err := hippo.OpenOptions(hippo.Options{Dir: *dir, NoSync: *noSync, CertShards: *shards})
	if err != nil {
		fmt.Fprintf(os.Stderr, "hippoctl: %v\n", err)
		os.Exit(1)
	}
	if *dir != "" {
		fmt.Printf("%s — durable at %s — type \\help for commands\n", hippo.Version, *dir)
	} else {
		fmt.Printf("%s — type \\help for commands\n", hippo.Version)
	}
	repl(db, os.Stdin, os.Stdout)
	if err := db.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "hippoctl: close: %v\n", err)
		os.Exit(1)
	}
}

func repl(db *hippo.DB, in io.Reader, out io.Writer) {
	scanner := bufio.NewScanner(in)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var batch []string // non-nil while collecting \batch ... \end lines
	fmt.Fprint(out, "hippo> ")
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		switch {
		case batch != nil && strings.EqualFold(line, `\end`):
			runBatchScript(db, out, strings.Join(batch, "\n"))
			batch = nil
		case batch != nil && strings.EqualFold(line, `\abort`):
			fmt.Fprintln(out, "batch discarded")
			batch = nil
		case batch != nil:
			if line != "" {
				batch = append(batch, line)
			}
		case strings.EqualFold(line, `\batch`):
			batch = []string{}
			fmt.Fprintln(out, "collecting batch; finish with \\end, discard with \\abort")
		case line != "":
			if !execute(db, out, line) {
				return
			}
		}
		if batch != nil {
			fmt.Fprint(out, "batch> ")
		} else {
			fmt.Fprint(out, "hippo> ")
		}
	}
	if batch != nil {
		fmt.Fprintf(out, "\nbatch discarded: input ended before \\end (%d collected lines not applied)\n", len(batch))
	}
}

// runBatchScript parses a semicolon-separated script and applies it with
// group commit: maximal runs of DML become one atomic ApplyBatch each (no
// consistent query ever observes a prefix of a run), while other
// statements execute individually between runs.
func runBatchScript(db *hippo.DB, out io.Writer, src string) {
	stmts, err := sqlparse.ParseScript(src)
	if err != nil {
		fmt.Fprintf(out, "error: %v\n", err)
		return
	}
	eng := db.Engine()
	var run []sqlparse.Statement
	total, dml, batches, rows := 0, 0, 0, 0
	flush := func() bool {
		if len(run) == 0 {
			return true
		}
		counts, err := eng.ApplyBatch(run)
		if err != nil {
			fmt.Fprintf(out, "error: %v (batch rolled back)\n", err)
			return false
		}
		// The background checkpointer rides the engine change feed, so
		// these engine-level writes bound the WAL automatically.
		for _, n := range counts {
			rows += n
		}
		total += len(run)
		dml += len(run)
		batches++
		run = nil
		return true
	}
	for _, st := range stmts {
		switch st.(type) {
		case *sqlparse.Insert, *sqlparse.Delete:
			run = append(run, st)
		default:
			if !flush() {
				return
			}
			if _, _, err := eng.ExecStmt(st); err != nil {
				fmt.Fprintf(out, "error: %v\n", err)
				return
			}
			total++
		}
	}
	if !flush() {
		return
	}
	fmt.Fprintf(out, "batch ok: %d statements (%d DML in %d atomic groups, %d rows affected)\n",
		total, dml, batches, rows)
}

// execute runs one line; it returns false to quit.
func execute(db *hippo.DB, out io.Writer, line string) bool {
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(out, "error: %v\n", r)
		}
	}()
	if !strings.HasPrefix(line, "\\") {
		runSQL(db, out, line)
		return true
	}
	cmd, rest, _ := strings.Cut(line[1:], " ")
	cmd = strings.ToLower(cmd)
	rest = strings.TrimSpace(rest)
	switch cmd {
	case "quit", "q", "exit":
		return false
	case "help", "h":
		fmt.Fprintln(out, helpText)
	case "fd":
		if err := db.AddFDSpec(rest); err != nil {
			fmt.Fprintf(out, "error: %v\n", err)
		} else {
			fmt.Fprintln(out, "ok")
		}
	case "key":
		parts := strings.Fields(rest)
		if len(parts) != 2 {
			fmt.Fprintln(out, "usage: \\key <rel> <a,b>")
			break
		}
		if err := db.AddKey(parts[0], strings.Split(parts[1], ",")...); err != nil {
			fmt.Fprintf(out, "error: %v\n", err)
		} else {
			fmt.Fprintln(out, "ok")
		}
	case "denial":
		if err := db.AddDenial(rest); err != nil {
			fmt.Fprintf(out, "error: %v\n", err)
		} else {
			fmt.Fprintln(out, "ok")
		}
	case "constraints":
		for _, c := range db.Constraints() {
			fmt.Fprintln(out, " ", c)
		}
		if len(db.Constraints()) == 0 {
			fmt.Fprintln(out, "  (none)")
		}
	case "analyze":
		t0 := time.Now()
		rep, err := db.Analyze()
		if err != nil {
			fmt.Fprintf(out, "error: %v\n", err)
			break
		}
		fmt.Fprintf(out, "constraints=%d edges=%d conflicting-tuples=%d max-degree=%d (%v)\n",
			rep.Constraints, rep.Edges, rep.ConflictingTuples, rep.MaxDegree, time.Since(t0))
	case "cq", "cqn", "cqp", "cqr":
		var opts []hippo.Option
		switch cmd {
		case "cqn":
			opts = append(opts, hippo.WithNaiveProver())
		case "cqp":
			opts = append(opts, hippo.WithProverTier())
		case "cqr":
			opts = append(opts, hippo.WithRequireRewriteTier())
		}
		res, st, err := db.ConsistentQuery(rest, opts...)
		if err != nil {
			fmt.Fprintf(out, "error: %v\n", err)
			break
		}
		printResult(out, res)
		fmt.Fprintln(out, hippo.FormatStats(st))
	case "rw":
		res, err := db.RewrittenQuery(rest)
		if err != nil {
			fmt.Fprintf(out, "error: %v\n", err)
			break
		}
		printResult(out, res)
	case "maint":
		sys := db.System()
		m := sys.Maintenance()
		fmt.Fprintf(out, "deltas-applied=%d edges-added=%d edges-removed=%d combinations=%d full-rebuilds=%d pending=%d\n",
			m.DeltasApplied, m.EdgesAdded, m.EdgesRemoved, m.Combinations,
			m.FullRebuilds, sys.PendingDeltas())
		fmt.Fprintf(out, "maintainer: eager-folds=%d overflows=%d\n", m.EagerFolds, m.PendingOverflows)
		if err := sys.MaintenanceHealth(); err != nil {
			fmt.Fprintf(out, "maintenance-error: %v\n", err)
		}
		fmt.Fprintf(out, "epoch=%d views-published=%d views-reclaimed=%d slabs-reclaimed=%d\n",
			sys.Epoch(), m.ViewsPublished, m.ViewsReclaimed, m.SlabsReclaimed)
		fmt.Fprintf(out, "shards=%d migrations=%d shard-reclaims=%d\n",
			sys.Shards(), m.Migrations, m.ShardReclaims)
		for _, si := range sys.ShardStats() {
			if sys.Shards() > 1 {
				fmt.Fprintf(out, "  shard %d: edges=%d components=%d vertices=%d\n",
					si.Shard, si.Edges, si.Components, si.Vertices)
			}
		}
		c := sys.CacheStats()
		fmt.Fprintf(out, "verdict-cache: entries=%d hits=%d misses=%d stores=%d invalidated=%d evicted=%d resets=%d\n",
			c.Entries, c.Hits, c.Misses, c.Stores, c.Invalidated, c.Evicted, c.Resets)
		tc := db.TierCounts()
		fmt.Fprintf(out, "tiers: rewrite=%d hybrid=%d prover=%d fallbacks=%d (constraint-epoch=%d)\n",
			tc.Rewrite, tc.Hybrid, tc.Prover, tc.Fallbacks, sys.ConstraintEpoch())
	case "checkpoint":
		t0 := time.Now()
		if err := db.Checkpoint(); err != nil {
			fmt.Fprintf(out, "error: %v\n", err)
			break
		}
		fmt.Fprintf(out, "checkpoint written, WAL truncated (%v)\n", time.Since(t0))
	case "repairs":
		n, err := db.CountRepairs()
		if err != nil {
			fmt.Fprintf(out, "error: %v\n", err)
			break
		}
		fmt.Fprintf(out, "%d repairs\n", n)
	case "batch":
		if rest == "" {
			fmt.Fprintln(out, "usage: \\batch <file.sql> (or bare \\batch to collect lines until \\end)")
			break
		}
		data, err := os.ReadFile(rest)
		if err != nil {
			fmt.Fprintf(out, "error: %v\n", err)
			break
		}
		runBatchScript(db, out, string(data))
	case "load":
		data, err := os.ReadFile(rest)
		if err != nil {
			fmt.Fprintf(out, "error: %v\n", err)
			break
		}
		// ParseScript is quote- and comment-aware, so a ';' inside a string
		// literal does not split the statement (unlike a naive split).
		stmts, err := sqlparse.ParseScript(string(data))
		if err != nil {
			fmt.Fprintf(out, "error: %v\n", err)
			break
		}
		// Engine-level writes feed the background checkpointer through
		// the change feed, so the WAL stays bounded while loading.
		for i, st := range stmts {
			if _, _, err := db.Engine().ExecStmt(st); err != nil {
				fmt.Fprintf(out, "error at statement %d: %v\n", i+1, err)
				return true
			}
		}
		fmt.Fprintf(out, "loaded %d statements\n", len(stmts))
	default:
		fmt.Fprintf(out, "unknown command \\%s (try \\help)\n", cmd)
	}
	return true
}

func runSQL(db *hippo.DB, out io.Writer, sql string) {
	res, n, err := db.Exec(sql)
	if err != nil {
		fmt.Fprintf(out, "error: %v\n", err)
		return
	}
	if res != nil {
		printResult(out, res)
		return
	}
	fmt.Fprintf(out, "ok (%d rows affected)\n", n)
}

func printResult(out io.Writer, res *hippo.Result) {
	cols := res.Columns()
	fmt.Fprintln(out, strings.Join(cols, " | "))
	for _, row := range res.Rows {
		fmt.Fprintln(out, value.TupleString(row))
	}
	fmt.Fprintf(out, "(%d rows)\n", len(res.Rows))
}

const helpText = `  SQL statements run directly (CREATE TABLE / INSERT / DELETE / SELECT).
  \fd <rel>: <a,b> -> <c>     declare a functional dependency
  \key <rel> <a,b>            declare a key constraint
  \denial <atoms WHERE cond>  declare a general denial constraint
  \constraints                list declared constraints
  \analyze                    run conflict detection
  \cq <select>                consistent answers (tiered planner picks the strategy)
  \cqn <select>               consistent answers (naive prover)
  \cqp <select>               consistent answers pinned to the prover tier
  \cqr <select>               consistent answers, rewrite tier required (errors if ineligible)
  \rw <select>                consistent answers via query rewriting
  \maint                      maintenance stats (deltas, rebuilds, caches, tier counts)
  \repairs                    count repairs (exponential; small data only)
  \load <file.sql>            run statements from a file
  \batch <file.sql>           group-commit a file (DML runs apply atomically)
  \batch ... \end             collect statements, apply as one atomic batch
  \checkpoint                 snapshot durable state, truncate the WAL (-dir mode)
  \quit                       exit`
