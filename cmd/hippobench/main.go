// Command hippobench runs the Hippo experiment suite (E1–E19 plus
// ablations, see DESIGN.md §3) and prints each result as a Markdown table,
// ready to paste into EXPERIMENTS.md.
//
// Usage:
//
//	hippobench                 # all experiments at full scale
//	hippobench -scale quick    # fast smoke run
//	hippobench -exp e3         # a single experiment
//	hippobench -exp e12 -json  # machine-readable record (e.g. BENCH_E12.json)
//	hippobench -sizes 1000,5000,20000
//	hippobench -exp e17 -procs 1,2,4  # bound the GOMAXPROCS sweep (E17)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"hippo/internal/bench"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id: all, e1..e19, ablation-pruning, ablation-detection")
		scale   = flag.String("scale", "full", "preset scale: quick or full")
		sizes   = flag.String("sizes", "", "comma-separated size override for sweeps (e.g. 1000,5000,20000)")
		n       = flag.Int("n", 0, "fixed-size override for E4/E6/E7/E9/E10/E12")
		reps    = flag.Int("reps", 0, "repetitions per timing (min kept)")
		jsonOut = flag.Bool("json", false, "emit the result table as JSON (single -exp only)")
		procs   = flag.String("procs", "", "comma-separated GOMAXPROCS sweep for E17 (default 1,2,4,8)")
	)
	flag.Parse()

	var sc bench.Scale
	switch *scale {
	case "quick":
		sc = bench.QuickScale()
	case "full":
		sc = bench.FullScale()
	default:
		fmt.Fprintf(os.Stderr, "hippobench: unknown scale %q (want quick or full)\n", *scale)
		os.Exit(2)
	}
	if *sizes != "" {
		var out []int
		for _, part := range strings.Split(*sizes, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || v <= 0 {
				fmt.Fprintf(os.Stderr, "hippobench: bad size %q\n", part)
				os.Exit(2)
			}
			out = append(out, v)
		}
		sc.Sizes = out
	}
	if *n > 0 {
		sc.N = *n
	}
	if *reps > 0 {
		sc.Reps = *reps
	}
	if *procs != "" {
		var out []int
		for _, part := range strings.Split(*procs, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || v <= 0 {
				fmt.Fprintf(os.Stderr, "hippobench: bad procs %q\n", part)
				os.Exit(2)
			}
			out = append(out, v)
		}
		sc.Procs = out
	}

	if strings.EqualFold(*exp, "all") {
		if *jsonOut {
			fmt.Fprintln(os.Stderr, "hippobench: -json requires a single -exp")
			os.Exit(2)
		}
		if err := bench.RunAll(os.Stdout, sc); err != nil {
			fmt.Fprintf(os.Stderr, "hippobench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	tbl, err := bench.Run(*exp, sc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hippobench: %v\n", err)
		os.Exit(1)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(tbl); err != nil {
			fmt.Fprintf(os.Stderr, "hippobench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	fmt.Println(tbl.Markdown())
}
