// Command hippod serves a hippo database over HTTP/JSON.
//
// Usage:
//
//	hippod [-addr :8080] [-dir path] [-fd "rel: a,b -> c"]...
//
// With -dir the database is durable (write-ahead log + checkpoints) and
// reopening the directory recovers the pre-crash state; without it the
// server is in-memory. -fd declares functional dependencies at startup
// (repeatable); constraints can also be baked into a durable directory
// beforehand.
//
// On SIGTERM or SIGINT the server drains gracefully: it stops accepting
// requests, cancels in-flight queries through their contexts, waits for
// handlers to unwind, takes a final checkpoint (durable mode), and exits
// 0. A second signal aborts immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hippo"
	"hippo/internal/server"
)

// fdList collects repeated -fd flags.
type fdList []string

func (f *fdList) String() string     { return fmt.Sprint(*f) }
func (f *fdList) Set(s string) error { *f = append(*f, s); return nil }

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		dir         = flag.String("dir", "", "durable data directory (empty = in-memory)")
		nosync      = flag.Bool("nosync", false, "skip per-commit fsync (durable mode)")
		shards      = flag.Int("shards", 1, "certification shard count K (1 = unsharded)")
		maxInflight = flag.Int("max-inflight", 64, "max concurrently executing queries")
		defTimeout  = flag.Duration("default-timeout", 30*time.Second, "query timeout when the request sets none")
		maxTimeout  = flag.Duration("max-timeout", 5*time.Minute, "upper clamp on requested query timeouts")
		sessionIdle = flag.Duration("session-idle", 5*time.Minute, "idle time before a session's snapshot is released")
		drainGrace  = flag.Duration("drain-grace", 10*time.Second, "how long shutdown waits for handlers to unwind")
		fds         fdList
	)
	flag.Var(&fds, "fd", "functional dependency \"rel: a,b -> c\" (repeatable)")
	flag.Parse()

	log.SetPrefix("hippod: ")
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)

	db, err := hippo.OpenOptions(hippo.Options{Dir: *dir, NoSync: *nosync, CertShards: *shards})
	if err != nil {
		log.Fatalf("open: %v", err)
	}
	for _, spec := range fds {
		if err := db.AddFDSpec(spec); err != nil {
			log.Fatalf("constraint %q: %v", spec, err)
		}
	}

	srv := server.New(db, server.Config{
		MaxInFlight:    *maxInflight,
		DefaultTimeout: *defTimeout,
		MaxTimeout:     *maxTimeout,
		SessionIdle:    *sessionIdle,
		Logf:           log.Printf,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)

	mode := "in-memory"
	if *dir != "" {
		mode = "durable dir=" + *dir
	}
	log.Printf("serving on %s (%s, max-inflight=%d, shards=%d)", *addr, mode, *maxInflight, db.System().Shards())

	select {
	case err := <-errc:
		// The listener died before any signal: nothing to drain.
		srv.Close()
		log.Fatalf("listen: %v", err)
	case sig := <-sigc:
		log.Printf("%v: draining", sig)
	}

	// Drain sequence: refuse new work and cancel in-flight queries, wait
	// for handlers to unwind (bounded), then release sessions, take the
	// final checkpoint, and close the database.
	srv.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), *drainGrace)
	defer cancel()
	go func() {
		<-sigc
		log.Printf("second signal: aborting drain")
		cancel()
	}()
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.Canceled) {
		log.Printf("shutdown: %v", err)
	}
	if err := srv.Close(); err != nil {
		log.Fatalf("close: %v", err)
	}
	log.Printf("drained cleanly")
}
