// Command hippogen generates synthetic inconsistent database instances as
// SQL dumps on stdout, for loading into hippoctl or external tools.
//
// Usage:
//
//	hippogen -workload emp -n 10000 -conflicts 0.02 -seed 7
//	hippogen -workload sources -n 500 -conflicts 0.25
package main

import (
	"flag"
	"fmt"
	"os"

	"hippo/internal/engine"
	"hippo/internal/workload"
)

func main() {
	var (
		kind  = flag.String("workload", "emp", "workload: emp (emp+dept tables) or sources (two-source integration)")
		n     = flag.Int("n", 1000, "number of base tuples")
		rate  = flag.Float64("conflicts", 0.02, "conflict/overlap rate in [0,1]")
		seed  = flag.Int64("seed", 7, "generator seed")
		depts = flag.Int("depts", 100, "departments (emp workload)")
	)
	flag.Parse()

	if *rate < 0 || *rate > 1 {
		fmt.Fprintln(os.Stderr, "hippogen: -conflicts must be in [0,1]")
		os.Exit(2)
	}

	db := engine.New()
	switch *kind {
	case "emp":
		rep, err := workload.Emp(db, workload.EmpConfig{N: *n, ConflictRate: *rate, Seed: *seed})
		if err != nil {
			fatal(err)
		}
		if err := workload.Dept(db, workload.DeptConfig{N: *depts, Seed: *seed + 1}); err != nil {
			fatal(err)
		}
		fmt.Printf("-- emp workload: %d rows, %d conflicting pairs\n", rep.Rows, rep.Conflicts)
		fmt.Printf("-- suggested constraint: FD emp: id -> salary\n")
	case "sources":
		dis, err := workload.Sources(db, workload.SourcesConfig{N: *n, OverlapRate: *rate, Seed: *seed})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("-- sources workload: %d disagreeing keys\n", dis)
		fmt.Printf("-- suggested constraint: FD merged: k -> v\n")
	default:
		fmt.Fprintf(os.Stderr, "hippogen: unknown workload %q\n", *kind)
		os.Exit(2)
	}

	dump, err := workload.SQLDump(db)
	if err != nil {
		fatal(err)
	}
	fmt.Print(dump)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "hippogen: %v\n", err)
	os.Exit(1)
}
