#!/usr/bin/env sh
# Documentation/lint guard: formatting, vet, and the rule that every
# internal package (and the root package) carries a proper godoc package
# comment ("// Package xxx ..." immediately above its package clause in at
# least one file).
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
out=$(gofmt -l .)
if [ -n "$out" ]; then
  echo "gofmt needed on:" >&2
  echo "$out" >&2
  exit 1
fi

echo "== go vet =="
go vet ./...

echo "== package comments =="
fail=0
for dir in . internal/*/; do
  pkgdir=${dir%/}
  # Skip directories without non-test Go files.
  files=$(find "$pkgdir" -maxdepth 1 -name '*.go' ! -name '*_test.go' 2>/dev/null)
  [ -n "$files" ] || continue
  if ! grep -l '^// Package ' $files >/dev/null 2>&1; then
    echo "missing package comment: $pkgdir" >&2
    fail=1
  fi
done
for cmd in cmd/*/; do
  files=$(find "${cmd%/}" -maxdepth 1 -name '*.go' ! -name '*_test.go' 2>/dev/null)
  [ -n "$files" ] || continue
  if ! grep -l '^// Command ' $files >/dev/null 2>&1; then
    echo "missing command comment: ${cmd%/}" >&2
    fail=1
  fi
done
[ "$fail" -eq 0 ] || exit 1

echo "docslint: OK"
