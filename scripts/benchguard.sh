#!/usr/bin/env sh
# Benchmark-regression guard: exercise the benchmark harness end to end so
# bench code cannot rot. It fails on build errors, runtime errors, or
# panics — never on timing (numbers are hardware-dependent and windows are
# deliberately short).
#
# Covered: the Go benchmark wrappers for E1 (repair-enumeration demo),
# E10 (incremental maintenance), E11 (concurrent serving), E12 (verdict
# cache), E13 (group-commit batch pipeline), E14 (durable WAL writes +
# recovery), E15 (streaming evaluation + cost-based planning vs the
# materialized baseline), E16 (the hippod HTTP serving tier:
# connection sweep, deadline enforcement, drain/leak check), and E17
# (component-sharded certification: GOMAXPROCS sweep, sharded vs
# unsharded with in-harness answer equality), E18 (tiered planner:
# rewrite tier vs prover tier with in-harness answer equality and the
# zero-certification invariant), and E19 (async maintenance plane:
# group-commit fsync sharing, off-query-path delta folding, parallel WAL
# replay with in-harness state equality), each run exactly once
# (-benchtime=1x),
# plus the hippobench CLI path for the same experiments at quick scale.
# The E12..E19 quick-scale tables are additionally recorded to
# BENCH_E1x.json.
#
# Knobs:
#   BENCHGUARD_PROCS  comma-separated GOMAXPROCS sweep for the E17 record
#                     (default "1,2"; set e.g. "1,2,4,8" on multi-core CI
#                     runners). The chosen sweep dimension is recorded in
#                     BENCH_E17.json rows and Notes.
set -eu

cd "$(dirname "$0")/.."

echo "== build =="
go build ./...

echo "== bench wrappers (benchtime=1x) =="
go test -run '^$' -bench '^(BenchmarkE1MoreInformation|BenchmarkE10Incremental|BenchmarkE11Concurrent|BenchmarkE12VerdictCache|BenchmarkE13BatchPipeline|BenchmarkE14DurableWrites|BenchmarkE15StreamingEval|BenchmarkE16ServerTier|BenchmarkE17ShardScaling|BenchmarkE18TieredPlanner|BenchmarkE19MaintenancePlane)$' -benchtime=1x .

echo "== hippobench CLI (quick scale) =="
for exp in e1 e10 e11; do
  go run ./cmd/hippobench -exp "$exp" -scale quick > /dev/null
done

echo "== E12 record (BENCH_E12.json) =="
go run ./cmd/hippobench -exp e12 -scale quick -json > BENCH_E12.json
cat BENCH_E12.json

echo "== E13 record (BENCH_E13.json) =="
go run ./cmd/hippobench -exp e13 -scale quick -json > BENCH_E13.json
cat BENCH_E13.json

echo "== E14 record (BENCH_E14.json) =="
go run ./cmd/hippobench -exp e14 -scale quick -json > BENCH_E14.json
cat BENCH_E14.json

echo "== E15 record (BENCH_E15.json) =="
go run ./cmd/hippobench -exp e15 -scale quick -json > BENCH_E15.json
cat BENCH_E15.json

echo "== E16 record (BENCH_E16.json) =="
go run ./cmd/hippobench -exp e16 -scale quick -json > BENCH_E16.json
cat BENCH_E16.json

echo "== E17 record (BENCH_E17.json, procs=${BENCHGUARD_PROCS:-1,2}) =="
go run ./cmd/hippobench -exp e17 -scale quick -procs "${BENCHGUARD_PROCS:-1,2}" -json > BENCH_E17.json
cat BENCH_E17.json

echo "== E18 record (BENCH_E18.json) =="
go run ./cmd/hippobench -exp e18 -scale quick -json > BENCH_E18.json
cat BENCH_E18.json

echo "== E19 record (BENCH_E19.json) =="
go run ./cmd/hippobench -exp e19 -scale quick -json > BENCH_E19.json
cat BENCH_E19.json

echo "benchguard: OK"
