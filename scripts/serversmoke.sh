#!/usr/bin/env sh
# Server smoke test: boot hippod, configure it entirely over the wire
# (schema, conflicting data, the FD), check one consistent query filters
# the conflict, then send SIGTERM and require a clean graceful-drain
# exit (status 0). Pure liveness — no timing assertions.
set -eu

cd "$(dirname "$0")/.."

ADDR=127.0.0.1:18931
BASE="http://$ADDR"
BIN="$(mktemp -d)/hippod"

echo "== build =="
go build -o "$BIN" ./cmd/hippod

echo "== start =="
"$BIN" -addr "$ADDR" &
PID=$!
trap 'kill -9 $PID 2>/dev/null || true' EXIT

# Wait for the health endpoint (up to ~10s).
i=0
until curl -fsS "$BASE/health" >/dev/null 2>&1; do
  i=$((i + 1))
  if [ "$i" -ge 100 ]; then
    echo "serversmoke: server never became healthy" >&2
    exit 1
  fi
  sleep 0.1
done

echo "== configure over the wire =="
curl -fsS "$BASE/v1/exec" -d '{"sql":"CREATE TABLE emp (id INT, salary INT)"}' >/dev/null
curl -fsS "$BASE/v1/batch" -d '{"sqls":["INSERT INTO emp VALUES (1, 100)","INSERT INTO emp VALUES (1, 200)","INSERT INTO emp VALUES (2, 150)"]}' >/dev/null
curl -fsS "$BASE/v1/fd" -d '{"spec":"emp: id -> salary"}' >/dev/null

echo "== consistent query =="
ANSWER="$(curl -fsS "$BASE/v1/consistent-query" -d '{"sql":"SELECT * FROM emp"}')"
echo "$ANSWER"
case "$ANSWER" in
  *'[[2,150]]'*) ;;
  *)
    echo "serversmoke: expected consistent answer [[2,150]], got: $ANSWER" >&2
    exit 1
    ;;
esac

echo "== graceful drain (SIGTERM) =="
kill -TERM "$PID"
STATUS=0
wait "$PID" || STATUS=$?
trap - EXIT
if [ "$STATUS" -ne 0 ]; then
  echo "serversmoke: drain exited with status $STATUS, want 0" >&2
  exit 1
fi

echo "serversmoke: OK"
