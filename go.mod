module hippo

go 1.21
