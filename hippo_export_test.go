package hippo_test

import (
	"errors"
	"testing"

	"hippo"
)

// These tests compile against the public package surface only — no
// hippo/internal imports — proving an external consumer can recover the
// documented error types (hippo.BatchError, hippo.ErrUnsupported)
// without naming internal packages.

func TestPublicBatchErrorContract(t *testing.T) {
	db := hippo.Open()
	for _, q := range []string{
		"CREATE TABLE emp (id INT, salary INT)",
		"INSERT INTO emp VALUES (1, 100)",
	} {
		if _, _, err := db.Exec(q); err != nil {
			t.Fatal(err)
		}
	}
	db.AddFD("emp", []string{"id"}, []string{"salary"})

	_, err := db.ExecBatch("INSERT INTO emp VALUES (2, 200)", "DROP TABLE emp")
	var be *hippo.BatchError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v (%T), want *hippo.BatchError", err, err)
	}
	if be.Index != 1 {
		t.Errorf("failing statement index = %d, want 1", be.Index)
	}
	res, _, err := db.ConsistentQuery("SELECT * FROM emp WHERE id = 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Error("rolled-back batch leaked a row")
	}
}

func TestPublicErrUnsupportedContract(t *testing.T) {
	db := hippo.Open()
	for _, q := range []string{
		"CREATE TABLE emp (id INT, salary INT)",
		"INSERT INTO emp VALUES (1, 100)",
	} {
		if _, _, err := db.Exec(q); err != nil {
			t.Fatal(err)
		}
	}
	db.AddFD("emp", []string{"id"}, []string{"salary"})

	_, _, err := db.ConsistentQuery("SELECT id FROM emp")
	if err == nil {
		t.Fatal("existential projection should be rejected")
	}
	if !errors.Is(err, hippo.ErrUnsupported) {
		t.Errorf("err = %v, want errors.Is(err, hippo.ErrUnsupported)", err)
	}
}
