// Benchmarks regenerating the paper's experiments (one per table/figure;
// see DESIGN.md §3 for the experiment index) plus micro-benchmarks of the
// pipeline stages. Run with:
//
//	go test -bench=. -benchmem
//
// For the full paper-scale sweep with Markdown tables, use cmd/hippobench.
// External test package: internal/bench's E16 harness imports the root
// hippo package, so an in-package test file would form an import cycle.
package hippo_test

import (
	"io"
	"testing"

	"hippo/internal/bench"
	"hippo/internal/constraint"
	"hippo/internal/core"
	"hippo/internal/engine"
	"hippo/internal/workload"
)

// benchScale keeps the testing.B wrappers fast while exercising the same
// code paths as the full sweep.
func benchScale() bench.Scale {
	return bench.Scale{
		Sizes: []int{1000, 4000},
		Rates: []float64{0, 0.02, 0.08},
		N:     4000,
		Reps:  1,
	}
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	sc := benchScale()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Run(id, sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE1MoreInformation — demo part 1: CQA vs conflict deletion.
func BenchmarkE1MoreInformation(b *testing.B) { runExperiment(b, "e1") }

// BenchmarkE2Expressiveness — demo part 2: supported classes matrix.
func BenchmarkE2Expressiveness(b *testing.B) { runExperiment(b, "e2") }

// BenchmarkE3TimeVsSize — selection query, size sweep (Hippo vs QR vs SQL).
func BenchmarkE3TimeVsSize(b *testing.B) { runExperiment(b, "e3") }

// BenchmarkE4TimeVsConflicts — selection query, conflict-rate sweep.
func BenchmarkE4TimeVsConflicts(b *testing.B) { runExperiment(b, "e4") }

// BenchmarkE5JoinQuery — join query, size sweep.
func BenchmarkE5JoinQuery(b *testing.B) { runExperiment(b, "e5") }

// BenchmarkE6ProverModes — naive vs indexed membership checks.
func BenchmarkE6ProverModes(b *testing.B) { runExperiment(b, "e6") }

// BenchmarkE7UnionQuery — union handling (QR inapplicable).
func BenchmarkE7UnionQuery(b *testing.B) { runExperiment(b, "e7") }

// BenchmarkE8ConflictDetection — hypergraph construction sweep.
func BenchmarkE8ConflictDetection(b *testing.B) { runExperiment(b, "e8") }

// BenchmarkE9Overhead — Hippo/SQL overhead ratios.
func BenchmarkE9Overhead(b *testing.B) { runExperiment(b, "e9") }

// BenchmarkE10Incremental — incremental vs full-rebuild hypergraph
// maintenance under an update-interleaved workload.
func BenchmarkE10Incremental(b *testing.B) { runExperiment(b, "e10") }

// BenchmarkE11Concurrent — snapshot-isolated concurrent serving vs the
// locked baseline (readers x writers sweep).
func BenchmarkE11Concurrent(b *testing.B) { runExperiment(b, "e11") }

// BenchmarkE12VerdictCache — hot queries + localized updates: the
// component-scoped verdict cache vs full re-certification.
func BenchmarkE12VerdictCache(b *testing.B) { runExperiment(b, "e12") }

// BenchmarkE13BatchPipeline — group-commit batch write pipeline: update
// throughput vs batch size.
func BenchmarkE13BatchPipeline(b *testing.B) { runExperiment(b, "e13") }

// BenchmarkE14DurableWrites — WAL-logged vs in-memory write throughput
// and recovery time vs WAL length.
func BenchmarkE14DurableWrites(b *testing.B) { runExperiment(b, "e14") }

// BenchmarkE15StreamingEval — streaming iterator engine + cost-based
// planner vs the materialized pre-planner baseline (allocations via
// -benchmem reflect both paths; the E15 table itself reports the split).
func BenchmarkE15StreamingEval(b *testing.B) { runExperiment(b, "e15") }

// BenchmarkE16ServerTier — the hippod HTTP serving tier: concurrent
// connection sweep, 50ms-deadline enforcement on both evaluation paths,
// and a mid-flight drain with a goroutine-leak count.
func BenchmarkE16ServerTier(b *testing.B) { runExperiment(b, "e16") }

// BenchmarkE17ShardScaling — component-sharded certification (K=4) vs
// unsharded (K=1) under a GOMAXPROCS sweep, with sharded-vs-unsharded
// answer equality asserted inside the harness. The wrapper restricts the
// sweep to GOMAXPROCS=1 so -benchtime=1x stays fast; the full 1/2/4/8
// sweep runs via cmd/hippobench -exp e17 (see scripts/benchguard.sh).
func BenchmarkE17ShardScaling(b *testing.B) {
	sc := benchScale()
	sc.Procs = []int{1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Run("e17", sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE18TieredPlanner — the tiered planner's compiled-rewrite fast
// path vs the forced prover tier on the key-constraint hot query, with
// answer-set equality and the zero-certification invariant asserted
// inside the harness, plus the classification overhead an ineligible
// UNION query pays.
func BenchmarkE18TieredPlanner(b *testing.B) { runExperiment(b, "e18") }

// BenchmarkE19MaintenancePlane — the async maintenance plane: group-commit
// fsync sharing across concurrent committers, first-query latency with the
// maintainer folding off the query path vs folding disabled, and parallel
// WAL replay with recovered-state equality asserted inside the harness.
func BenchmarkE19MaintenancePlane(b *testing.B) { runExperiment(b, "e19") }

// BenchmarkAblationPruning — prover DFS with vs without early pruning.
func BenchmarkAblationPruning(b *testing.B) { runExperiment(b, "ablation-pruning") }

// BenchmarkAblationDetection — FD fast path vs generic denial join.
func BenchmarkAblationDetection(b *testing.B) { runExperiment(b, "ablation-detection") }

// --- Micro-benchmarks of individual pipeline stages. ---

// benchSystem builds a reusable analyzed system outside the timed loop.
func benchSystem(b *testing.B, n int, rate float64) *core.System {
	b.Helper()
	db := engine.New()
	if _, err := workload.Emp(db, workload.EmpConfig{N: n, ConflictRate: rate, Seed: 3}); err != nil {
		b.Fatal(err)
	}
	if err := workload.Dept(db, workload.DeptConfig{N: 100, Seed: 4}); err != nil {
		b.Fatal(err)
	}
	fd := constraint.FD{Rel: "emp", LHS: []string{"id"}, RHS: []string{"salary"}}
	sys := core.NewSystem(db, []constraint.Constraint{fd})
	if _, err := sys.Analyze(); err != nil {
		b.Fatal(err)
	}
	return sys
}

// BenchmarkStageConflictDetection isolates hypergraph construction.
func BenchmarkStageConflictDetection(b *testing.B) {
	db := engine.New()
	if _, err := workload.Emp(db, workload.EmpConfig{N: 10000, ConflictRate: 0.02, Seed: 5}); err != nil {
		b.Fatal(err)
	}
	fd := constraint.FD{Rel: "emp", LHS: []string{"id"}, RHS: []string{"salary"}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys := core.NewSystem(db, []constraint.Constraint{fd})
		if _, err := sys.Analyze(); err != nil {
			b.Fatal(err)
		}
		sys.Close() // unsubscribe so discarded systems are collectable
	}
}

// BenchmarkStageConsistentSelection times the full pipeline on a selection.
func BenchmarkStageConsistentSelection(b *testing.B) {
	sys := benchSystem(b, 10000, 0.02)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sys.ConsistentQuery(
			"SELECT * FROM emp WHERE salary > 90000", core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStageConsistentUnion times the pipeline on a union query.
func BenchmarkStageConsistentUnion(b *testing.B) {
	sys := benchSystem(b, 10000, 0.02)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sys.ConsistentQuery(
			"SELECT * FROM emp WHERE dept < 50 UNION SELECT * FROM emp WHERE dept >= 50",
			core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStageConsistentDifference times the pipeline on a difference.
func BenchmarkStageConsistentDifference(b *testing.B) {
	sys := benchSystem(b, 10000, 0.02)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sys.ConsistentQuery(
			"SELECT * FROM emp EXCEPT SELECT * FROM emp WHERE salary > 90000",
			core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStagePlainSQL is the no-consistency baseline for the same query.
func BenchmarkStagePlainSQL(b *testing.B) {
	sys := benchSystem(b, 10000, 0.02)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.DB().Query("SELECT * FROM emp WHERE salary > 90000"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStageQueryRewriting is the rewriting baseline end to end.
func BenchmarkStageQueryRewriting(b *testing.B) {
	sys := benchSystem(b, 10000, 0.02)
	rw, err := sys.Rewriter()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan, err := rw.RewriteSQL("SELECT * FROM emp WHERE salary > 90000")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sys.DB().RunPlan(plan); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStageEngineScan measures raw engine throughput for reference.
func BenchmarkStageEngineScan(b *testing.B) {
	sys := benchSystem(b, 10000, 0.02)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.DB().Query("SELECT * FROM emp"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunAllQuick exercises the whole harness (what hippobench does).
func BenchmarkRunAllQuick(b *testing.B) {
	sc := bench.Scale{Sizes: []int{500}, Rates: []float64{0, 0.05}, N: 500, Reps: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := bench.RunAll(io.Discard, sc); err != nil {
			b.Fatal(err)
		}
	}
}
