package hippo

import (
	"errors"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"hippo/internal/value"
)

// openDurable opens a durable database, failing the test on error.
func openDurable(t *testing.T, dir string) *DB {
	t.Helper()
	db, err := OpenOptions(Options{Dir: dir})
	if err != nil {
		t.Fatalf("OpenOptions(%s): %v", dir, err)
	}
	return db
}

// sortedRows renders a result's rows sorted, for order-free comparison.
func sortedRows(res *Result) []string {
	out := make([]string, 0, len(res.Rows))
	for _, r := range res.Rows {
		out = append(out, r.Key())
	}
	sort.Strings(out)
	return out
}

// componentFPs returns the sorted conflict-component fingerprints — the
// hypergraph-identity part of the recovery equality checks.
func componentFPs(t *testing.T, db *DB) []uint64 {
	t.Helper()
	if _, err := db.Analyze(); err != nil {
		t.Fatal(err)
	}
	comps := db.System().Hypergraph().Components()
	fps := make([]uint64, 0, len(comps))
	for _, c := range comps {
		fps = append(fps, c.FP)
	}
	sort.Slice(fps, func(i, j int) bool { return fps[i] < fps[j] })
	return fps
}

func equalUint64s(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestRecoveryReopenRoundTrip drives the full durable lifecycle through
// the public API — DDL, constraints, single statements, batches, an
// explicit checkpoint, post-checkpoint writes — and reopens twice,
// asserting plain queries, consistent answers, and conflict components
// all survive identically.
func TestRecoveryReopenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db := openDurable(t, dir)
	mustExec(db, "CREATE TABLE emp (id INT, name TEXT, salary INT)")
	mustExec(db, `INSERT INTO emp VALUES (1, 'ann', 100), (1, 'ann', 200), (2, 'bob', 150)`)
	if err := db.AddFD("emp", []string{"id"}, []string{"salary"}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.ExecBatch(
		"INSERT INTO emp VALUES (3, 'eve', 300)",
		"DELETE FROM emp WHERE id = 2",
		"INSERT INTO emp VALUES (2, 'bob', 175)",
	); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	mustExec(db, "INSERT INTO emp VALUES (4, 'dan', 50)")
	mustExec(db, "CREATE INDEX emp_id ON emp (id)")

	plain, err := db.Query("SELECT * FROM emp")
	if err != nil {
		t.Fatal(err)
	}
	cq, _, err := db.ConsistentQuery("SELECT * FROM emp")
	if err != nil {
		t.Fatal(err)
	}
	fps := componentFPs(t, db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	for round := 0; round < 2; round++ {
		db2 := openDurable(t, dir)
		if got := db2.Constraints(); len(got) != 1 || !strings.Contains(got[0], "FD emp") {
			t.Fatalf("round %d: recovered constraints %v", round, got)
		}
		plain2, err := db2.Query("SELECT * FROM emp")
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if a, b := sortedRows(plain), sortedRows(plain2); !equalStrings(a, b) {
			t.Fatalf("round %d: plain rows diverged:\n%v\n%v", round, a, b)
		}
		cq2, _, err := db2.ConsistentQuery("SELECT * FROM emp")
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if a, b := sortedRows(cq), sortedRows(cq2); !equalStrings(a, b) {
			t.Fatalf("round %d: consistent answers diverged:\n%v\n%v", round, a, b)
		}
		if got := componentFPs(t, db2); !equalUint64s(fps, got) {
			t.Fatalf("round %d: component fingerprints diverged: %v vs %v", round, fps, got)
		}
		// The declared index must have been rebuilt.
		tab, err := db2.Engine().Table("emp")
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := tab.Index([]int{0}); !ok {
			t.Fatalf("round %d: index on emp(id) not restored", round)
		}
		if err := db2.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestRecoveryDropTableAndRecreate exercises DDL replay across a table's
// whole lifecycle: create, fill, drop, recreate under the same name with a
// different shape.
func TestRecoveryDropTableAndRecreate(t *testing.T) {
	dir := t.TempDir()
	db := openDurable(t, dir)
	mustExec(db, "CREATE TABLE r (a INT, b INT)")
	mustExec(db, "INSERT INTO r VALUES (1, 2), (3, 4)")
	mustExec(db, "DROP TABLE r")
	mustExec(db, "CREATE TABLE r (s TEXT)")
	mustExec(db, "INSERT INTO r VALUES ('alive')")
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2 := openDurable(t, dir)
	defer db2.Close()
	res, err := db2.Query("SELECT * FROM r")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != value.Text("alive") {
		t.Fatalf("recovered rows %v", res.Rows)
	}
	if res.Schema.Len() != 1 {
		t.Fatalf("recovered schema %v", res.Schema)
	}
}

// TestRecoveryCorruptLogSurfacesTyped flips a byte in the WAL and asserts
// the public sentinel: opening must fail with hippo.ErrCorrupt, not panic
// and not silently skip the damaged record.
func TestRecoveryCorruptLogSurfacesTyped(t *testing.T) {
	dir := t.TempDir()
	db := openDurable(t, dir)
	mustExec(db, "CREATE TABLE r (a INT)")
	mustExec(db, "INSERT INTO r VALUES (1), (2), (3)")
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var log string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".log") {
			log = filepath.Join(dir, e.Name())
		}
	}
	if log == "" {
		t.Fatal("no WAL segment found")
	}
	data, err := os.ReadFile(log)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the FIRST record's payload: mid-log damage (the
	// INSERT record follows) is corruption, not a recoverable torn tail.
	data[17+8+1] ^= 0x20 // segment header + frame header + 1
	if err := os.WriteFile(log, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenOptions(Options{Dir: dir}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("got %v, want hippo.ErrCorrupt", err)
	}
}

// TestRecoveryAutoCheckpoint drives enough writes through a tiny
// CheckpointBytes threshold to force automatic rotations, then reopens and
// checks nothing was lost across the checkpoint boundary.
func TestRecoveryAutoCheckpoint(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenOptions(Options{Dir: dir, CheckpointBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(db, "CREATE TABLE r (a INT)")
	for i := 0; i < 40; i++ {
		if _, _, err := db.Exec("INSERT INTO r VALUES (" + value.Int(int64(i)).String() + ")"); err != nil {
			t.Fatal(err)
		}
	}
	// Checkpoints run on a background goroutine; give it a bounded window
	// to absorb the burst before asserting the log stayed bounded.
	deadline := time.Now().Add(5 * time.Second)
	for db.System().WALBytes() > 1<<12 {
		if time.Now().After(deadline) {
			t.Fatalf("WAL grew to %d bytes despite auto-checkpointing", db.System().WALBytes())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2 := openDurable(t, dir)
	defer db2.Close()
	res, err := db2.Query("SELECT * FROM r")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 40 {
		t.Fatalf("recovered %d rows, want 40", len(res.Rows))
	}
}

// TestRecoveryConstraintOnDroppedTable pins the tolerant-open contract: a
// constraint whose table was later dropped (every step individually
// legal) must not brick the directory. Reopen succeeds, plain SQL serves,
// the semantic error surfaces per consistent query — and recreating the
// table repairs it online, exactly like in-memory mode.
func TestRecoveryConstraintOnDroppedTable(t *testing.T) {
	dir := t.TempDir()
	db := openDurable(t, dir)
	mustExec(db, "CREATE TABLE emp (id INT, salary INT)")
	if err := db.AddFD("emp", []string{"id"}, []string{"salary"}); err != nil {
		t.Fatal(err)
	}
	mustExec(db, "CREATE TABLE other (x INT)")
	mustExec(db, "INSERT INTO other VALUES (42)")
	mustExec(db, "DROP TABLE emp")
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2 := openDurable(t, dir)
	defer db2.Close()
	res, err := db2.Query("SELECT * FROM other")
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("plain SQL must survive a dangling constraint: %v (%d rows)", err, len(res.Rows))
	}
	if _, _, err := db2.ConsistentQuery("SELECT * FROM other"); err == nil {
		t.Fatal("consistent query should surface the dangling-constraint error")
	}
	// Recreating the table repairs the system online.
	mustExec(db2, "CREATE TABLE emp (id INT, salary INT)")
	if _, _, err := db2.ConsistentQuery("SELECT * FROM other"); err != nil {
		t.Fatalf("consistent query after repair: %v", err)
	}
}

// TestAddConstraintValidatesEagerly: a typo'd constraint must be rejected
// at declaration — identically in-memory and durable — and must never
// reach the durable log (where it would fail every later open).
func TestAddConstraintValidatesEagerly(t *testing.T) {
	dir := t.TempDir()
	dur := openDurable(t, dir)
	mem := Open()
	for _, db := range []*DB{dur, mem} {
		mustExec(db, "CREATE TABLE emp (id INT, salary INT)")
		if err := db.AddFD("emp", []string{"nope"}, []string{"salary"}); err == nil {
			t.Fatal("FD on a missing column must be rejected")
		}
		if err := db.AddFD("ghost", []string{"id"}, []string{"salary"}); err == nil {
			t.Fatal("FD on a missing table must be rejected")
		}
		if err := db.AddDenial("ghost g WHERE g.id = 0"); err == nil {
			t.Fatal("denial on a missing table must be rejected")
		}
		if err := db.AddFD("emp", []string{"id"}, []string{"salary"}); err != nil {
			t.Fatalf("valid FD rejected: %v", err)
		}
	}
	if err := dur.Close(); err != nil {
		t.Fatal(err)
	}
	db2 := openDurable(t, dir)
	defer db2.Close()
	if got := db2.Constraints(); len(got) != 1 {
		t.Fatalf("recovered constraints %v, want exactly the valid FD", got)
	}
	if _, _, err := db2.ConsistentQuery("SELECT * FROM emp"); err != nil {
		t.Fatalf("recovered system must analyze cleanly: %v", err)
	}
}

// TestDurableRejectsCheckpointInMemory pins the error contract for
// in-memory handles.
func TestDurableRejectsCheckpointInMemory(t *testing.T) {
	db := Open()
	if err := db.Checkpoint(); err == nil {
		t.Fatal("Checkpoint on an in-memory database must error")
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close on an in-memory database: %v", err)
	}
}
