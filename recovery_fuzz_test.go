package hippo

import (
	"fmt"
	"sort"
	"testing"

	"hippo/internal/storage"
	"hippo/internal/value"
)

// FuzzRecovery is the recovery differential: a random DDL/DML/batch script
// decoded from the fuzz input is executed twice — once on an in-memory
// database, once on a durable one that is closed and reopened (checkpoint
// threshold deliberately tiny, so rotations land mid-script) — and the two
// must agree on every table's rows at their exact RowIDs, on consistent
// answers, on conflict-component fingerprints, and on each statement's
// success/failure. CI runs it as a 20-second smoke alongside FuzzParse.
func FuzzRecovery(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 0, 5, 3})
	f.Add([]byte{0, 9, 0, 9, 1, 4, 2, 1})                   // duplicate keys: conflicts
	f.Add([]byte{4, 3, 0, 7, 0, 7, 2, 7, 6, 0, 1})          // batch with transient pair
	f.Add([]byte{0, 1, 7, 0, 2, 7, 5, 0, 3, 7})             // checkpoints between writes
	f.Add([]byte{0, 1, 5, 0, 2, 5, 0, 3})                   // drop/recreate cycles
	f.Add([]byte{6, 0, 1, 0, 1, 4, 2, 0, 4, 0, 5, 7, 0, 9}) // denial + batches + checkpoint
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 96 {
			data = data[:96]
		}
		mem := Open()
		dir := t.TempDir()
		dur, err := OpenOptions(Options{Dir: dir, NoSync: true, CheckpointBytes: 512})
		if err != nil {
			t.Fatal(err)
		}
		for _, db := range []*DB{mem, dur} {
			mustExec(db, "CREATE TABLE r (a INT, b INT)")
			if err := db.AddFD("r", []string{"a"}, []string{"b"}); err != nil {
				t.Fatal(err)
			}
		}
		script := decodeRecoveryScript(data)
		for i, op := range script {
			errA := op(mem)
			errB := op(dur)
			if (errA == nil) != (errB == nil) {
				t.Fatalf("op %d diverged: in-memory err=%v, durable err=%v", i, errA, errB)
			}
		}
		if err := dur.Close(); err != nil {
			t.Fatal(err)
		}
		dur2, err := OpenOptions(Options{Dir: dir, NoSync: true, CheckpointBytes: 512})
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		defer dur2.Close()
		if a, b := recoveryFingerprint(t, mem), recoveryFingerprint(t, dur2); a != b {
			t.Fatalf("states diverged after reopen:\nin-memory: %s\nrecovered: %s", a, b)
		}
	})
}

// recoveryScriptOp is one decoded fuzz operation.
type recoveryScriptOp func(*DB) error

// decodeRecoveryScript maps fuzz bytes onto a bounded op vocabulary over
// table r(a,b): inserts, predicate deletes, atomic batches with transient
// insert+delete pairs, drop/recreate, a denial constraint, checkpoints.
func decodeRecoveryScript(data []byte) []recoveryScriptOp {
	var ops []recoveryScriptOp
	next := func(i *int) int {
		if *i >= len(data) {
			return 0
		}
		b := int(data[*i])
		*i++
		return b
	}
	addedDenial := false
	for i := 0; i < len(data); {
		switch next(&i) % 8 {
		case 0:
			a, b := next(&i)%8, next(&i)%4
			sql := fmt.Sprintf("INSERT INTO r VALUES (%d, %d)", a, b)
			ops = append(ops, func(db *DB) error { _, _, err := db.Exec(sql); return err })
		case 1:
			a, b1, b2 := next(&i)%8, next(&i)%4, next(&i)%4
			sql := fmt.Sprintf("INSERT INTO r VALUES (%d, %d), (%d, %d)", a, b1, a, b2)
			ops = append(ops, func(db *DB) error { _, _, err := db.Exec(sql); return err })
		case 2:
			a := next(&i) % 8
			sql := fmt.Sprintf("DELETE FROM r WHERE a = %d", a)
			ops = append(ops, func(db *DB) error { _, _, err := db.Exec(sql); return err })
		case 3:
			b := next(&i) % 4
			sql := fmt.Sprintf("DELETE FROM r WHERE b > %d", b)
			ops = append(ops, func(db *DB) error { _, _, err := db.Exec(sql); return err })
		case 4:
			n := next(&i)%3 + 1
			var batch []string
			for j := 0; j < n; j++ {
				a, b := next(&i)%8, next(&i)%4
				batch = append(batch,
					fmt.Sprintf("INSERT INTO r VALUES (%d, %d)", a, b),
					fmt.Sprintf("INSERT INTO r VALUES (%d, %d)", a+10, b))
				if next(&i)%2 == 0 {
					// Transient pair: the +10 row dies within the batch and
					// must coalesce out of the log entirely.
					batch = append(batch, fmt.Sprintf("DELETE FROM r WHERE a = %d", a+10))
				}
			}
			ops = append(ops, func(db *DB) error { _, err := db.ExecBatch(batch...); return err })
		case 5:
			ops = append(ops, func(db *DB) error {
				if _, _, err := db.Exec("DROP TABLE r"); err != nil {
					return err
				}
				_, _, err := db.Exec("CREATE TABLE r (a INT, b INT)")
				return err
			})
		case 6:
			if addedDenial {
				continue
			}
			addedDenial = true
			ops = append(ops, func(db *DB) error {
				return db.AddDenial("r x, r y WHERE x.a = y.a AND x.b < y.b AND x.b = 0")
			})
		case 7:
			ops = append(ops, func(db *DB) error {
				if db.System().Durable() {
					return db.Checkpoint()
				}
				return nil
			})
		}
		if len(ops) >= 48 {
			break
		}
	}
	return ops
}

// recoveryFingerprint renders the comparable state of a database: rows at
// their RowIDs, sorted consistent answers, and sorted component
// fingerprints.
func recoveryFingerprint(t *testing.T, db *DB) string {
	t.Helper()
	tab, err := db.Engine().Table("r")
	if err != nil {
		t.Fatal(err)
	}
	var rows []string
	tab.Scan(func(id storage.RowID, row value.Tuple) error {
		rows = append(rows, fmt.Sprintf("%d:%s", id, row.Key()))
		return nil
	})
	res, _, err := db.ConsistentQuery("SELECT * FROM r")
	if err != nil {
		t.Fatal(err)
	}
	answers := make([]string, 0, len(res.Rows))
	for _, r := range res.Rows {
		answers = append(answers, r.Key())
	}
	sort.Strings(answers)
	if _, err := db.Analyze(); err != nil {
		t.Fatal(err)
	}
	var fps []uint64
	for _, c := range db.System().Hypergraph().Components() {
		fps = append(fps, c.FP)
	}
	sort.Slice(fps, func(i, j int) bool { return fps[i] < fps[j] })
	return fmt.Sprintf("rows=%v answers=%v components=%x", rows, answers, fps)
}
