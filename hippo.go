// Package hippo is a from-scratch Go implementation of Hippo (Chomicki,
// Marcinkowski & Staworko, EDBT 2004): a system that computes consistent
// answers to SJUD SQL queries (selection, join/product, union, difference)
// over databases violating denial constraints — functional dependencies,
// key constraints, exclusion constraints, and general denial constraints.
//
// A consistent answer is a tuple contained in the query result of every
// repair of the database, where a repair is a maximal consistent subset of
// the data. Hippo never materializes repairs (there may be exponentially
// many); instead it builds the conflict hypergraph of constraint
// violations once, evaluates a cheap envelope query for candidates, and
// certifies each candidate with a polynomial-time prover over the
// hypergraph. A tiered planner classifies each query first: when the
// query/constraint combination is provably rewritable, the answer comes
// straight from a compiled first-order rewriting with zero certification,
// and everything else falls back to the certification pipeline (see
// WithProverTier / WithRequireRewriteTier to pin a tier).
//
// Quickstart:
//
//	db := hippo.Open()
//	for _, q := range []string{
//		"CREATE TABLE emp (id INT, salary INT)",
//		"INSERT INTO emp VALUES (1,100), (1,200), (2,150)",
//	} {
//		if _, _, err := db.Exec(q); err != nil {
//			log.Fatal(err)
//		}
//	}
//	db.AddFD("emp", []string{"id"}, []string{"salary"})
//	res, stats, err := db.ConsistentQuery("SELECT * FROM emp")
//	// res.Rows == [(2,150)] — the only tuple present in every repair.
package hippo

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"hippo/internal/aggregate"
	"hippo/internal/constraint"
	"hippo/internal/core"
	"hippo/internal/engine"
	"hippo/internal/envelope"
	"hippo/internal/prover"
	"hippo/internal/repair"
	"hippo/internal/value"
	"hippo/internal/wal"
)

// DB is a Hippo database handle: an embedded SQL engine plus a set of
// integrity constraints and the machinery to answer queries consistently.
type DB struct {
	sys *core.System
}

// Result is a materialized query result (schema + rows).
type Result = engine.Result

// Stats reports a consistent-query run stage by stage.
type Stats = core.Stats

// Value is a single SQL value.
type Value = value.Value

// Tuple is a row of values.
type Tuple = value.Tuple

// Open creates an empty in-memory Hippo database.
func Open() *DB {
	return &DB{sys: core.NewSystem(engine.New(), nil)}
}

// Options configure OpenOptions.
type Options struct {
	// Dir, when non-empty, selects durable mode: all tables, indexes, and
	// constraints persist under this directory through a write-ahead log
	// and periodic checkpoints, and opening an existing directory recovers
	// its exact pre-crash state (committed batches are atomic on disk: a
	// crash never resurfaces a batch prefix). Empty Dir opens the same
	// in-memory database Open does.
	Dir string
	// NoSync skips the per-commit fsync. Commits then survive a process
	// crash (the OS page cache holds them) but not an OS crash.
	NoSync bool
	// CheckpointBytes bounds the live WAL segment: once a committed write
	// pushes the segment past this size, a background checkpointer
	// snapshots the database into a checkpoint and rotates the log
	// (keeping recovery time proportional to the threshold, not to
	// history) without stalling the writer. 0 selects the default (8 MiB);
	// negative disables automatic checkpoints, leaving rotation to
	// explicit Checkpoint calls.
	CheckpointBytes int64
	// CertShards is the certification shard count K: the conflict
	// hypergraph, tuple index, and verdict invalidation are partitioned by
	// connected component over K shards, so delta folding and cache
	// invalidation parallelize across them. 0 and 1 select the unsharded
	// configuration, which is bit-identical to prior releases. The shard
	// layout is derived state, never persisted: a durable directory can be
	// reopened with any K. Capped at core.MaxShards.
	CertShards int
	// ReplayWorkers caps the workers recovery uses to replay the WAL's
	// committed batches in parallel (per-table commit order preserved;
	// identical recovered state for every count). 0 defers to the
	// HIPPO_REPLAY_WORKERS environment variable, then GOMAXPROCS; 1
	// forces sequential replay. In-memory mode ignores it.
	ReplayWorkers int
	// WrapSyncer, when set, wraps every file the durable store opens for
	// writing — a fault-injection hook for crash and degraded-maintenance
	// testing (see wal.Options.WrapSyncer). Leave nil in production.
	WrapSyncer func(name string, s wal.Syncer) wal.Syncer
}

// OpenOptions creates a Hippo database per o — in-memory when o.Dir is
// empty, durable otherwise. Durable opening fails if the directory's log
// or checkpoint is damaged (errors.Is(err, ErrCorrupt)); a torn trailing
// record from a crash mid-commit is not damage and recovers cleanly.
func OpenOptions(o Options) (*DB, error) {
	if o.Dir == "" {
		return &DB{sys: core.NewSystemShards(engine.New(), nil, o.CertShards)}, nil
	}
	sys, err := core.OpenDurable(core.DurableOptions{
		Dir:             o.Dir,
		NoSync:          o.NoSync,
		CheckpointBytes: o.CheckpointBytes,
		Shards:          o.CertShards,
		ReplayWorkers:   o.ReplayWorkers,
		WrapSyncer:      o.WrapSyncer,
	})
	if err != nil {
		return nil, err
	}
	return &DB{sys: sys}, nil
}

// Checkpoint serializes the current database state, installs it durably,
// and truncates the write-ahead log — bounding the work the next open
// must replay. It errors on an in-memory database.
func (db *DB) Checkpoint() error { return db.sys.Checkpoint() }

// Close releases the database: for durable mode it flushes and seals the
// write-ahead log. With default syncing every committed write is already
// on disk; in NoSync mode the flush here is what makes a clean shutdown
// durable. The handle must not be used afterwards.
func (db *DB) Close() error { return db.sys.Close() }

// ErrCorrupt marks damaged durable state: OpenOptions refuses to guess
// past a checksum-failed record or checkpoint and returns an error
// matching this sentinel instead of silently skipping committed writes.
var ErrCorrupt = wal.ErrCorrupt

// ErrCheckpoint marks an automatic-checkpoint failure surfaced by Exec or
// ExecBatch. Automatic checkpoints run on a background goroutine, so the
// failure may surface on a later write than the one whose commit grew the
// log past the threshold; either way the reporting statement COMMITTED —
// it is durable in the log and visible to queries; only the
// log-compaction checkpoint failed. Callers must not retry the statement
// on an error matching this sentinel. Close also drains an uncollected
// failure.
var ErrCheckpoint = errors.New("hippo: automatic checkpoint failed")

// checkpointHealth surfaces a background-checkpoint failure after a
// committed write, wrapping it in ErrCheckpoint so it cannot be mistaken
// for a failed statement.
func (db *DB) checkpointHealth() error {
	if err := db.sys.TakeCheckpointError(); err != nil {
		return fmt.Errorf("%w: %w", ErrCheckpoint, err)
	}
	return nil
}

// Wrap builds a Hippo handle over an existing engine database.
func Wrap(db *engine.DB) *DB {
	return &DB{sys: core.NewSystem(db, nil)}
}

// Engine exposes the underlying engine for advanced use (e.g. registering
// it with the database/sql driver). In durable mode, writes issued
// directly on the engine are logged like any other commit and — because
// the automatic checkpointer rides the engine's change feed, not this
// wrapper — still trigger automatic checkpoints; no manual Checkpoint
// calls are needed to bound the log.
func (db *DB) Engine() *engine.DB { return db.sys.DB() }

// Exec runs any SQL statement (DDL, DML, or SELECT) directly against the
// stored — possibly inconsistent — database. The conflict analysis stays
// current automatically: inserts and deletes stream to the conflict stage
// as deltas and are folded into the hypergraph incrementally by the next
// consistent query, while DDL forces a full re-detection.
func (db *DB) Exec(sql string) (*Result, int, error) {
	return db.ExecContext(context.Background(), sql)
}

// ExecContext is Exec honoring ctx: an already-expired context is
// rejected before any work is dispatched, SELECT evaluation dies within a
// bounded number of rows of cancellation, and long INSERT/DELETE
// statements abort between rows.
func (db *DB) ExecContext(ctx context.Context, sql string) (*Result, int, error) {
	res, n, err := db.sys.DB().ExecContext(ctx, sql)
	// Only writes report checkpoint health; a SELECT (non-nil result)
	// must not report a background checkpoint failure.
	if err == nil && res == nil {
		err = db.checkpointHealth()
	}
	return res, n, err
}

// ExecBatch applies a sequence of DML statements (INSERT/DELETE) as one
// atomic group commit and returns the per-statement affected-row counts.
// The whole batch runs under a single hold of the write sequencer: no
// published query view — and hence no ConsistentQuery — ever observes a
// prefix of it, statements see the effects of earlier statements in the
// batch, and a failing statement rolls the entire batch back (the typed
// *BatchError names it). The batch's change feed is coalesced
// before it reaches the conflict stage, so a row inserted and deleted
// within one batch costs no delta probe and no cache invalidation, and
// the next consistent query folds the whole batch into the hypergraph
// under one freeze and one view publication.
func (db *DB) ExecBatch(sqls ...string) ([]int, error) {
	return db.ExecBatchContext(context.Background(), sqls...)
}

// ExecBatchContext is ExecBatch honoring ctx. Cancellation mid-batch
// rolls the entire batch back (atomicity is never traded for latency: a
// deadline aborts a batch, it cannot truncate one) and reports a
// *BatchError wrapping the context's error.
func (db *DB) ExecBatchContext(ctx context.Context, sqls ...string) ([]int, error) {
	counts, err := db.sys.DB().ExecBatchContext(ctx, sqls)
	if err == nil {
		err = db.checkpointHealth()
	}
	return counts, err
}

// Query evaluates a SELECT directly on the stored database, ignoring
// inconsistency — the "plain SQL" baseline of the paper's demonstration.
func (db *DB) Query(sql string) (*Result, error) {
	return db.sys.DB().Query(sql)
}

// QueryContext is Query honoring ctx: evaluation aborts within a bounded
// number of rows of cancellation or an expired deadline.
func (db *DB) QueryContext(ctx context.Context, sql string) (*Result, error) {
	return db.sys.DB().QueryContext(ctx, sql)
}

// AddFD declares the functional dependency rel: lhs → rhs. The
// constraint is validated against the catalog — rel must exist and the
// columns must resolve — and rejected here rather than by a later query;
// in durable mode the error also reports a failure to persist the
// declaration. A constraint that errors is not registered.
func (db *DB) AddFD(rel string, lhs, rhs []string) error {
	return db.sys.AddConstraint(constraint.FD{Rel: rel, LHS: lhs, RHS: rhs})
}

// AddKey declares cols as a key of rel (an FD cols → all other columns).
// See AddFD for the validation and error contract.
func (db *DB) AddKey(rel string, cols ...string) error {
	return db.sys.AddConstraint(constraint.Key{Rel: rel, Cols: cols})
}

// AddFDSpec parses an FD of the form "rel: a,b -> c".
func (db *DB) AddFDSpec(spec string) error {
	fd, err := constraint.ParseFD(spec)
	if err != nil {
		return err
	}
	return db.sys.AddConstraint(fd)
}

// AddDenial parses and registers a general denial constraint, written as
// an atom list with a condition, e.g.
//
//	"emp e1, emp e2 WHERE e1.id = e2.id AND e1.salary <> e2.salary"
//
// meaning no combination of tuples may jointly satisfy the condition.
func (db *DB) AddDenial(spec string) error {
	d, err := constraint.ParseDenial(spec)
	if err != nil {
		return err
	}
	return db.sys.AddConstraint(d)
}

// Constraints returns string forms of the registered constraints.
func (db *DB) Constraints() []string {
	cs := db.sys.Constraints()
	out := make([]string, len(cs))
	for i, c := range cs {
		out[i] = c.String()
	}
	return out
}

// AnalysisReport summarizes conflict detection.
type AnalysisReport struct {
	Constraints         int
	Edges               int
	ConflictingTuples   int
	MaxDegree           int
	MaxEdgeSize         int
	CombinationsChecked int64
}

// Analyze runs conflict detection and builds the conflict hypergraph. It
// is also run implicitly by the first consistent query.
func (db *DB) Analyze() (AnalysisReport, error) {
	det, err := db.sys.Analyze()
	if err != nil {
		return AnalysisReport{}, err
	}
	gs := db.sys.GraphStats()
	return AnalysisReport{
		Constraints:         det.Constraints,
		Edges:               gs.Edges,
		ConflictingTuples:   gs.ConflictingVertices,
		MaxDegree:           gs.MaxDegree,
		MaxEdgeSize:         gs.MaxEdgeSize,
		CombinationsChecked: det.Combinations,
	}, nil
}

// Option tunes ConsistentQuery.
type Option func(*core.Options)

// WithNaiveProver makes the prover issue one engine query per membership
// check (the paper's unoptimized base version).
func WithNaiveProver() Option {
	return func(o *core.Options) { o.Mode = core.ProverNaive }
}

// WithoutPruning disables early independence pruning in the prover
// (ablation knob).
func WithoutPruning() Option {
	return func(o *core.Options) { o.DisablePruning = true }
}

// WithoutVerdictCache bypasses the component-scoped verdict cache: every
// candidate is re-certified from scratch (the E12 baseline).
func WithoutVerdictCache() Option {
	return func(o *core.Options) { o.DisableVerdictCache = true }
}

// WithMaterializedEvaluation opts out of the streaming operator engine
// and cost-based planner: the envelope is fully evaluated in the written
// join order (access-path selection only) before certification begins.
// Answers are identical either way (pinned by differential tests); the
// knob exists as the E15 baseline and as an escape hatch should a plan
// regress.
func WithMaterializedEvaluation() Option {
	return func(o *core.Options) { o.Materialized = true }
}

// WithGlobalCertification disables the prover's component decomposition,
// running one blocking-edge search over all negative atoms jointly — the
// pre-decomposition architecture, kept for ablations and differential
// testing. Implies an uncached run.
func WithGlobalCertification() Option {
	return func(o *core.Options) { o.GlobalCertification = true }
}

// WithProverTier pins this query to the prover (certification) tier,
// bypassing the tiered planner's rewrite fast path. It is the baseline
// for tier benchmarks and differential tests; every other tuning option
// above implies it.
func WithProverTier() Option {
	return func(o *core.Options) { o.Tier = core.TierForceProver }
}

// WithRequireRewriteTier fails the query with core.ErrRewriteIneligible
// unless the classifier serves it from the compiled first-order rewrite
// tier — no silent fallback. Use it to assert a hot query stays on the
// fast path.
func WithRequireRewriteTier() Option {
	return func(o *core.Options) { o.Tier = core.TierRequireRewrite }
}

// TierCounters counts consistent queries answered by each planner tier.
type TierCounters = core.TierCounters

// TierCounts reports how many consistent queries each tier has answered
// over this database's lifetime, plus fast-tier run-time fallbacks.
func (db *DB) TierCounts() TierCounters { return db.sys.TierCounts() }

// ErrRewriteIneligible re-exports the sentinel WithRequireRewriteTier
// fails with when the classifier routes the query away from the rewrite
// tier.
var ErrRewriteIneligible = core.ErrRewriteIneligible

// ConsistentQuery computes the consistent answers to an SJUD query: the
// tuples present in the query result of every repair. Any number of
// ConsistentQuery calls run concurrently with each other and with
// writers: each is served from an immutable snapshot-isolated query view
// (see Snapshot for pinning one view across several queries).
func (db *DB) ConsistentQuery(sql string, opts ...Option) (*Result, *Stats, error) {
	return db.ConsistentQueryContext(context.Background(), sql, opts...)
}

// ConsistentQueryContext is ConsistentQuery honoring ctx: cancellation or
// an expired deadline aborts the run — envelope evaluation stops within a
// bounded number of rows and certification stops between candidates — on
// both the streaming pipeline and the materialized baseline
// (WithMaterializedEvaluation), returning the context's error.
func (db *DB) ConsistentQueryContext(ctx context.Context, sql string, opts ...Option) (*Result, *Stats, error) {
	var o core.Options
	for _, f := range opts {
		f(&o)
	}
	return db.sys.ConsistentQueryContext(ctx, sql, o)
}

// Snap is a pinned snapshot-isolated view of the database: a consistent
// point-in-time state plus the conflict analysis matching it exactly.
// Queries at a Snap observe that state regardless of concurrent writers.
// Close it when done so retired storage can be reclaimed.
type Snap = core.Snapshot

// Snapshot pins the current query view (refreshing it first if writes
// are queued). The snapshot is safe for concurrent use.
func (db *DB) Snapshot() (*Snap, error) {
	return db.sys.Snapshot()
}

// ConsistentQueryAt computes consistent answers against a pinned
// snapshot: repeated calls see one immutable database state.
func (db *DB) ConsistentQueryAt(sn *Snap, sql string, opts ...Option) (*Result, *Stats, error) {
	return db.ConsistentQueryAtContext(context.Background(), sn, sql, opts...)
}

// ConsistentQueryAtContext is ConsistentQueryAt honoring ctx (see
// ConsistentQueryContext for the cancellation contract).
func (db *DB) ConsistentQueryAtContext(ctx context.Context, sn *Snap, sql string, opts ...Option) (*Result, *Stats, error) {
	var o core.Options
	for _, f := range opts {
		f(&o)
	}
	return db.sys.ConsistentQueryAtContext(ctx, sn, sql, o)
}

// RewrittenQuery computes consistent answers via the query-rewriting
// baseline (Arenas–Bertossi–Chomicki). It fails for queries or constraints
// outside that method's class (e.g. UNION queries, non-binary denials).
func (db *DB) RewrittenQuery(sql string) (*Result, error) {
	rw, err := db.sys.Rewriter()
	if err != nil {
		return nil, err
	}
	plan, err := rw.RewriteSQL(sql)
	if err != nil {
		return nil, err
	}
	return db.sys.DB().RunPlan(plan)
}

// Repairs materializes every repair of the database (exponential; guarded
// by an internal limit — intended for small demonstrations and tests).
func (db *DB) Repairs() ([]*engine.DB, error) {
	en, err := db.sys.RepairEnumerator()
	if err != nil {
		return nil, err
	}
	return en.Materialize()
}

// CountRepairs returns the number of repairs.
func (db *DB) CountRepairs() (int, error) {
	en, err := db.sys.RepairEnumerator()
	if err != nil {
		return 0, err
	}
	return en.Count()
}

// OracleConsistentQuery computes consistent answers by brute force over
// all repairs — the ground truth Hippo is tested against.
func (db *DB) OracleConsistentQuery(sql string) ([]Tuple, error) {
	en, err := db.sys.RepairEnumerator()
	if err != nil {
		return nil, err
	}
	return en.ConsistentAnswers(sql)
}

// Support reports whether Hippo and the rewriting baseline can handle the
// query under the registered constraints; the errors explain why not.
func (db *DB) Support(sql string) (hippoErr, rewriteErr error, err error) {
	sup, err := db.sys.Support(sql)
	if err != nil {
		return nil, nil, err
	}
	return sup.Hippo, sup.Rewrite, nil
}

// System exposes the underlying pipeline for benchmarks and tooling.
func (db *DB) System() *core.System { return db.sys }

// FormatStats renders run statistics for display.
func FormatStats(st *Stats) string { return core.FormatStats(st) }

// BatchError reports which statement stopped an ExecBatch; the batch was
// rolled back and none of its changes became visible. Recover it with
// errors.As to learn the 0-based Index of the failing statement.
type BatchError = engine.BatchError

// ErrUnsupported marks a query shape outside the SJUD class Hippo
// supports. Every unsupported-shape rejection from ConsistentQuery wraps
// it, so callers can test errors.Is(err, ErrUnsupported) instead of
// matching message text.
var ErrUnsupported = envelope.ErrUnsupported

// Oracle re-exports the repair enumerator type for advanced callers.
type Oracle = repair.Enumerator

// ProverStats re-exports the prover counters embedded in Stats.
type ProverStats = prover.Stats

// Version identifies this implementation.
const Version = "hippo-go 1.0 (EDBT 2004 reproduction)"

// AggFunc re-exports the aggregate function enum (COUNT/SUM/MIN/MAX).
type AggFunc = aggregate.Func

// Aggregate functions usable with ConsistentAggregate.
const (
	AggCount = aggregate.Count
	AggSum   = aggregate.Sum
	AggMin   = aggregate.Min
	AggMax   = aggregate.Max
)

// AggRange is a range-consistent aggregation answer: the aggregate's
// value lies in [Lower, Upper] in every repair.
type AggRange = aggregate.Range

// ConsistentAggregate computes the range-consistent answer to a scalar
// aggregation (paper reference [3]): the tightest interval containing the
// aggregate's value over every repair. It requires exactly one registered
// FD constraint on the queried relation; where optionally filters rows
// (e.g. "salary > 100", or "" for none).
func (db *DB) ConsistentAggregate(rel string, fn AggFunc, attr, where string) (AggRange, error) {
	var fd *constraint.FD
	for _, c := range db.sys.Constraints() {
		f, ok := c.(constraint.FD)
		if !ok || !strings.EqualFold(f.Rel, rel) {
			continue
		}
		if fd != nil {
			return AggRange{}, fmt.Errorf("hippo: range aggregation supports exactly one FD on %q, found several", rel)
		}
		cp := f
		fd = &cp
	}
	if fd == nil {
		return AggRange{}, fmt.Errorf("hippo: range aggregation requires an FD constraint on %q", rel)
	}
	return aggregate.Consistent(db.sys.DB(), aggregate.Query{
		Rel: rel, Fn: fn, Attr: attr, Where: where, FD: *fd,
	})
}

// AggGroup is one group's range-consistent aggregation result.
type AggGroup = aggregate.GroupResult

// ConsistentGroupedAggregate computes one range-consistent aggregate per
// distinct value of the grouping columns (GROUP BY semantics), under the
// single registered FD on rel. Results are sorted by group key.
func (db *DB) ConsistentGroupedAggregate(rel string, fn AggFunc, attr, where string, groupBy ...string) ([]AggGroup, error) {
	var fd *constraint.FD
	for _, c := range db.sys.Constraints() {
		f, ok := c.(constraint.FD)
		if !ok || !strings.EqualFold(f.Rel, rel) {
			continue
		}
		if fd != nil {
			return nil, fmt.Errorf("hippo: range aggregation supports exactly one FD on %q, found several", rel)
		}
		cp := f
		fd = &cp
	}
	if fd == nil {
		return nil, fmt.Errorf("hippo: range aggregation requires an FD constraint on %q", rel)
	}
	return aggregate.ConsistentGrouped(db.sys.DB(), aggregate.GroupedQuery{
		Query:   aggregate.Query{Rel: rel, Fn: fn, Attr: attr, Where: where, FD: *fd},
		GroupBy: groupBy,
	})
}
